//! Fault-injection harness for the serving path
//! (snapshot → engine → query).
//!
//! Every hostile input here — truncated bytes, corrupted fields, NaN/Inf
//! similarity rows, zero-dimensional embeddings, out-of-range ids,
//! unknown words — must surface as a typed [`CoreError`], never a panic.
//! And the harness itself must be inert: a valid snapshot passed through
//! it still serves bit-for-bit identically to the pipeline it came from.

use soulmate_core::engine::CachedCut;
use soulmate_core::error::CoreError;
use soulmate_core::pipeline::{Pipeline, PipelineConfig};
use soulmate_core::snapshot::PipelineSnapshot;
use soulmate_core::IvfConfig;
use soulmate_corpus::{generate, GeneratorConfig, Timestamp};
use std::path::PathBuf;

fn fitted() -> (soulmate_corpus::Dataset, Pipeline) {
    let d = generate(&GeneratorConfig {
        n_authors: 14,
        n_communities: 3,
        n_concepts: 5,
        entities_per_concept: 8,
        mean_tweets_per_author: 22,
        ..GeneratorConfig::small()
    })
    .unwrap();
    let p = Pipeline::fit(&d, PipelineConfig::fast()).unwrap();
    (d, p)
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("soulmate-fault-{}-{name}", std::process::id()));
    p
}

fn author_tweets(
    d: &soulmate_corpus::Dataset,
    author: u32,
    take: usize,
) -> Vec<(Timestamp, String)> {
    d.tweets
        .iter()
        .filter(|t| t.author == author)
        .take(take)
        .map(|t| (t.timestamp, t.text.clone()))
        .collect()
}

// ---------------------------------------------------------------------
// Byte-level corruption: truncation at many offsets.
// ---------------------------------------------------------------------

#[test]
fn truncated_snapshot_bytes_are_parse_errors_not_panics() {
    let (_, p) = fitted();
    let snap = p.snapshot(&[]);
    let path = tmp("truncate.json");
    snap.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 64, "snapshot suspiciously small");

    // Cut the file at the start, inside the header, mid-body, and one
    // byte short of valid — every prefix must fail as Parse, not panic.
    let cuts = [0, 1, 16, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1];
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = PipelineSnapshot::load(&path).unwrap_err();
        assert!(
            matches!(err, CoreError::Parse(_)),
            "truncation at {cut}/{} gave {err:?}, expected Parse",
            bytes.len()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_bytes_are_parse_errors() {
    let path = tmp("garbage.json");
    for garbage in [
        &b"\x00\x01\x02\xff\xfe binary junk"[..],
        b"[1, 2, 3]",
        b"{\"version\": 1}",
        b"null",
    ] {
        std::fs::write(&path, garbage).unwrap();
        let err = PipelineSnapshot::load(&path).unwrap_err();
        assert!(
            matches!(err, CoreError::Parse(_)),
            "garbage {garbage:?} gave {err:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Field-level corruption: structurally valid JSON, inconsistent model.
// ---------------------------------------------------------------------

/// Save a mutated snapshot and load it back, returning the load error.
fn load_error_of(mutate: impl FnOnce(&mut PipelineSnapshot)) -> CoreError {
    let (_, p) = fitted();
    let mut snap = p.snapshot(&[]);
    mutate(&mut snap);
    let path = tmp("field-corrupt.json");
    snap.save(&path).unwrap();
    let err = PipelineSnapshot::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    err
}

#[test]
fn unsupported_version_is_schema_error() {
    let err = load_error_of(|s| s.version = 99);
    assert!(matches!(err, CoreError::Schema(_)), "{err:?}");
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn version_field_corrupted_on_disk_is_schema_error() {
    // Corrupt the serialized bytes directly, not the struct: the file
    // stays well-formed JSON but carries a version we never wrote.
    let (_, p) = fitted();
    let snap = p.snapshot(&[]);
    let path = tmp("version-bytes.json");
    snap.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"version\":2"), "serialized layout changed");
    std::fs::write(&path, text.replace("\"version\":2", "\"version\":7")).unwrap();
    let err = PipelineSnapshot::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, CoreError::Schema(_)), "{err:?}");
}

#[test]
fn shape_corruptions_are_schema_errors() {
    // Each mutation breaks one cross-reference the serving path indexes.
    let cases: Vec<(&str, Box<dyn FnOnce(&mut PipelineSnapshot)>)> = vec![
        (
            "handle popped",
            Box::new(|s: &mut PipelineSnapshot| {
                s.author_handles.pop();
            }),
        ),
        (
            "x_total row popped",
            Box::new(|s: &mut PipelineSnapshot| {
                s.x_total.pop();
            }),
        ),
        (
            "x_total ragged",
            Box::new(|s: &mut PipelineSnapshot| {
                if let Some(row) = s.x_total.first_mut() {
                    row.pop();
                }
            }),
        ),
        (
            "centroid popped",
            Box::new(|s: &mut PipelineSnapshot| {
                s.centroids.pop();
            }),
        ),
        (
            "centroid dim changed",
            Box::new(|s: &mut PipelineSnapshot| {
                if let Some(c) = s.centroids.first_mut() {
                    c.push(0.0);
                }
            }),
        ),
        (
            "alpha out of range",
            Box::new(|s: &mut PipelineSnapshot| {
                s.alpha = 3.0;
            }),
        ),
        (
            "concept means popped",
            Box::new(|s: &mut PipelineSnapshot| {
                s.concept_means.pop();
            }),
        ),
        (
            "content std zero",
            Box::new(|s: &mut PipelineSnapshot| {
                s.content_stats = (0.0, 0.0);
            }),
        ),
        (
            "concept std negative",
            Box::new(|s: &mut PipelineSnapshot| {
                s.concept_stats = (0.1, -1.0);
            }),
        ),
    ];
    for (label, mutate) in cases {
        let err = load_error_of(mutate);
        assert!(
            matches!(err, CoreError::Schema(_)),
            "{label}: gave {err:?}, expected Schema"
        );
    }
}

// ---------------------------------------------------------------------
// Non-finite values: rejected at the boundary, tolerated in the kernels.
// ---------------------------------------------------------------------

#[test]
fn non_finite_fields_fail_validation() {
    // These cannot round-trip through JSON (NaN has no literal), so they
    // model in-process corruption: validate() is the same gate load()
    // runs, and it must catch every non-finite value the graph cut or
    // the standardization would otherwise consume.
    let (_, p) = fitted();

    let mut snap = p.snapshot(&[]);
    snap.x_total[1][2] = f32::NAN;
    let err = snap.validate().unwrap_err();
    assert!(matches!(err, CoreError::Schema(_)), "{err:?}");
    assert!(err.to_string().contains("x_total[1][2]"), "{err}");

    let mut snap = p.snapshot(&[]);
    snap.x_total[0][1] = f32::INFINITY;
    assert!(snap.validate().is_err());

    let mut snap = p.snapshot(&[]);
    snap.graph_min_sim = f32::NAN;
    assert!(snap.validate().is_err());

    let mut snap = p.snapshot(&[]);
    snap.concept_stats = (f32::NAN, 1.0);
    assert!(snap.validate().is_err());

    let mut snap = p.snapshot(&[]);
    if let Some(m) = snap.concept_means.first_mut() {
        *m = f32::NEG_INFINITY;
    }
    assert!(snap.validate().is_err());
}

#[test]
fn nan_and_inf_similarity_rows_never_panic_the_cut() {
    // The cut layer itself must stay total even on rows validation never
    // saw (e.g. a bug upstream): NaN/Inf entries degrade to dropped or
    // extreme edges, never to a panic.
    let x = vec![
        vec![1.0, 0.4, f32::NAN],
        vec![0.4, 1.0, f32::INFINITY],
        vec![f32::NAN, f32::INFINITY, 1.0],
    ];
    let cut = CachedCut::new(&x, 0.2, 2).unwrap();
    for sims in [
        vec![f32::NAN, f32::NAN, f32::NAN],
        vec![f32::INFINITY, f32::NEG_INFINITY, 0.5],
        vec![0.9, f32::NAN, f32::INFINITY],
    ] {
        let forest = cut.cut_with_query(&sims).unwrap();
        // The query node always exists and every node is in a component.
        let covered: usize = forest.components().iter().map(Vec::len).sum();
        assert_eq!(covered, 4);
        assert!(forest.query_subgraph(3).is_some());
        // No non-finite edge weight may survive into the forest.
        assert!(forest.edges().iter().all(|e| e.w.is_finite()));
    }
}

#[test]
fn mis_sized_similarity_rows_are_invalid_errors() {
    let x = vec![vec![1.0, 0.3], vec![0.3, 1.0]];
    let cut = CachedCut::new(&x, 0.0, 1).unwrap();
    for bad in [0usize, 1, 3, 64] {
        let sims = vec![0.5; bad];
        let err = cut.cut_with_query(&sims).unwrap_err();
        assert!(
            matches!(err, CoreError::Invalid(_)),
            "row length {bad} gave {err:?}"
        );
    }
    // Ragged base matrices are typed errors too.
    let ragged = vec![vec![1.0, 0.3], vec![0.3]];
    assert!(CachedCut::new(&ragged, 0.0, 1).is_err());
}

// ---------------------------------------------------------------------
// Degenerate models: zero-dim embeddings, unknown words, empty queries.
// ---------------------------------------------------------------------

#[test]
fn zero_dim_embedding_is_schema_error() {
    let (_, p) = fitted();
    let mut snap = p.snapshot(&[]);
    let vocab_len = snap.vocab.len();
    snap.collective =
        soulmate_embedding::Embedding::from_matrix(soulmate_linalg::Matrix::zeros(vocab_len, 0));
    let err = snap.validate().unwrap_err();
    assert!(matches!(err, CoreError::Schema(_)), "{err:?}");
}

#[test]
fn vocab_embedding_row_mismatch_is_schema_error() {
    let (_, p) = fitted();
    let mut snap = p.snapshot(&[]);
    let dim = snap.collective.dim();
    // One embedding row too few: an in-vocabulary word id would read a
    // vector that belongs to no word.
    snap.collective = soulmate_embedding::Embedding::from_matrix(soulmate_linalg::Matrix::zeros(
        snap.vocab.len().saturating_sub(1),
        dim,
    ));
    let err = snap.validate().unwrap_err();
    assert!(matches!(err, CoreError::Schema(_)), "{err:?}");
    assert!(err.to_string().contains("vocabulary"), "{err}");
}

#[test]
fn unknown_words_and_empty_queries_are_invalid_errors() {
    let (_, p) = fitted();
    let snap = p.snapshot(&[]);
    let engine = snap.query_engine().unwrap();

    // No tweets at all.
    let err = engine.link_query(&[]).unwrap_err();
    assert!(matches!(err, CoreError::Invalid(_)), "{err:?}");

    // Tweets whose every token is out of vocabulary.
    let oov = vec![
        (Timestamp(0), "zzqqxy wvutsr plmokn".to_string()),
        (Timestamp(10), "qqq zzz xxx".to_string()),
    ];
    let err = engine.link_query(&oov).unwrap_err();
    assert!(matches!(err, CoreError::Invalid(_)), "{err:?}");

    // Empty strings / whitespace only.
    let blank = vec![
        (Timestamp(0), "   ".to_string()),
        (Timestamp(5), String::new()),
    ];
    assert!(engine.link_query(&blank).is_err());

    // A batch containing one bad member fails as a whole — typed.
    let good = vec![(Timestamp(0), "anything".to_string())];
    let out = engine.link_query_authors(&[good, Vec::new()]);
    assert!(out.is_err());
}

// ---------------------------------------------------------------------
// Retrieval index section: corruption degrades, never errors.
// ---------------------------------------------------------------------

/// Load a snapshot whose `index` section was replaced by `corrupt`, build
/// the IVF engine, and return it with the dataset and the reference
/// pipeline (the index is an *optimization section*: corrupting it must
/// never fail the load or the queries).
fn serve_with_index_section(
    corrupt: impl FnOnce(&mut PipelineSnapshot),
) -> (
    soulmate_corpus::Dataset,
    Pipeline,
    u64, // snapshot.index_discarded delta
    Vec<soulmate_core::QueryOutcome>,
) {
    let (d, p) = fitted();
    let cfg = IvfConfig {
        n_centroids: 3,
        ..IvfConfig::default()
    };
    let mut snap = p.snapshot_with_index(&[], &cfg).unwrap();
    corrupt(&mut snap);
    let path = tmp("index-corrupt.json");
    snap.save(&path).unwrap();
    let loaded = PipelineSnapshot::load(&path).expect("index corruption must not fail the load");
    std::fs::remove_file(&path).ok();

    let obs = soulmate_obs::global();
    let before = obs.counter("snapshot.index_discarded");
    let engine = loaded.query_engine_ivf(&cfg).unwrap();
    let discarded = obs.counter("snapshot.index_discarded") - before;
    let queries = vec![author_tweets(&d, 2, 5), author_tweets(&d, 9, 5)];
    let outcomes = engine
        .link_query_authors_ivf(&queries, 1)
        .expect("a discarded index must degrade to exact serving, not error");
    (d, p, discarded, outcomes)
}

#[test]
fn corrupted_index_sections_degrade_to_exact_serving() {
    let corruptions: Vec<(&str, Box<dyn FnOnce(&mut PipelineSnapshot)>)> = vec![
        (
            "not an object",
            Box::new(|s: &mut PipelineSnapshot| {
                s.index = Some(serde_json::json!("garbage"));
            }),
        ),
        (
            "wrong schema",
            Box::new(|s: &mut PipelineSnapshot| {
                s.index = Some(serde_json::json!({"centroids": [1, 2, 3]}));
            }),
        ),
        (
            "inverted list out of range",
            Box::new(|s: &mut PipelineSnapshot| {
                if let Some(lists) = s
                    .index
                    .as_mut()
                    .and_then(|v| v.get_mut("lists"))
                    .and_then(|v| v.as_array_mut())
                {
                    if let Some(first) = lists.first_mut().and_then(|l| l.as_array_mut()) {
                        first.push(serde_json::json!(9999));
                    }
                }
            }),
        ),
    ];
    for (label, corrupt) in corruptions {
        let (d, p, discarded, outcomes) = serve_with_index_section(corrupt);
        assert!(discarded >= 1, "{label}: discard counter did not move");
        // With the index discarded the IVF entry point serves the exact
        // path — answers match the pipeline bit for bit.
        let exact = p
            .link_query_authors(&[author_tweets(&d, 2, 5), author_tweets(&d, 9, 5)])
            .unwrap();
        for (want, got) in exact.iter().zip(&outcomes) {
            assert_eq!(want.similarities, got.similarities, "{label}");
            assert_eq!(want.subgraph, got.subgraph, "{label}");
        }
    }
}

#[test]
fn missing_index_section_rebuilds_instead_of_failing() {
    let (_, _, discarded, outcomes) = serve_with_index_section(|s| {
        s.index = None;
    });
    // Absence is not corruption: the index is rebuilt, nothing discarded,
    // and the narrow probe actually routes (similarities carry 0.0
    // non-candidate sentinels rather than a full exact row).
    assert_eq!(discarded, 0);
    assert_eq!(outcomes.len(), 2);
}

// ---------------------------------------------------------------------
// The control arm: valid inputs pass through unchanged.
// ---------------------------------------------------------------------

#[test]
fn valid_snapshot_roundtrip_serves_bit_for_bit() {
    let (d, p) = fitted();
    let snap = p.snapshot(&[]);
    let path = tmp("control.json");
    snap.save(&path).unwrap();
    let loaded = PipelineSnapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let engine = loaded.query_engine().unwrap();
    for author in [0u32, 5, 9] {
        let tweets = author_tweets(&d, author, 6);
        let want = p.link_query_author(&tweets).unwrap();
        let got = engine.link_query(&tweets).unwrap();
        assert_eq!(want.similarities, got.similarities, "author {author}");
        assert_eq!(want.subgraph, got.subgraph, "author {author}");
        assert_eq!(want.subgraph_avg_weight, got.subgraph_avg_weight);
    }
}
