//! Stack-Wise Maximum Spanning Tree — the paper's Algorithm 1, implemented
//! faithfully.
//!
//! The algorithm pushes every edge onto a stack in *ascending* weight order
//! (weakest at the bottom), then pops — strongest first — appending each
//! popped edge to `L'` and its endpoints to `N'`, until every node of the
//! input graph has been covered. The components of the resulting `G'` are
//! the highly-correlated author subgraphs, each spanned by its strongest
//! edges.
//!
//! Two departures from the pseudocode, both forced by real inputs and
//! documented in DESIGN.md §5:
//!
//! 1. the pseudocode loops `while N'' ≠ ∅` — on a graph with isolated
//!    nodes the stack empties first, so we also stop on stack exhaustion
//!    (isolated nodes become singleton subgraphs);
//! 2. since the pseudocode performs no cycle check, a popped edge may join
//!    two already-covered nodes; we keep it only when it merges two
//!    components or covers a new node, which preserves the pseudocode's
//!    node-coverage semantics while keeping `G'` a forest (the "maximum
//!    spanning trees" the paper extracts from it). The
//!    [`swmst_literal`] variant keeps *every* popped edge for comparison.

use crate::forest::SpanningForest;
use crate::graph::{Edge, WeightedGraph};
use crate::unionfind::UnionFind;
use std::cmp::Ordering;

/// The order in which Algorithm 1 pops edges off its stack: weight
/// descending, ties broken by `(u, v)` ascending so results are
/// deterministic. Weights compare by [`f32::total_cmp`], so a NaN weight
/// (possible when a caller builds [`Edge`] values directly from unchecked
/// similarity data) sorts instead of panicking: positive NaN ranks above
/// every finite weight, negative NaN below.
///
/// A slice sorted by this comparator can be fed straight to
/// [`swmst_from_sorted`].
pub fn stack_pop_order(a: &Edge, b: &Edge) -> Ordering {
    b.w.total_cmp(&a.w).then(a.u.cmp(&b.u)).then(a.v.cmp(&b.v))
}

/// SW-MST over edges already in [`stack_pop_order`] (strongest first): the
/// pop loop of Algorithm 1 without the O(E log E) sort.
///
/// This is the entry point for callers that keep a sorted edge list alive
/// across many runs — the online `QueryEngine` merges a query's few edges
/// into its cached sorted base list and cuts in O(E) instead of re-sorting
/// the whole graph per query. The iterator is consumed lazily, so early
/// termination (full node coverage) skips the weak tail entirely.
///
/// Feeding edges out of order silently produces a different (non-SW-MST)
/// forest; order is the caller's contract. Edges with an endpoint outside
/// `0..n` (possible only for hand-built edge lists — [`WeightedGraph`]
/// validates on insert) are dropped rather than panicking.
pub fn swmst_from_sorted<I>(n: usize, edges: I) -> SpanningForest
where
    I: IntoIterator<Item = Edge>,
{
    let (selected, _) = pop_loop(n, edges);
    SpanningForest::new(n, selected)
}

/// [`swmst_from_sorted`] fused with the query-subgraph lookup: returns the
/// forest *and* the component containing `query` (sorted ascending), or
/// `None` for the component when `query >= n`.
///
/// Equivalent to `swmst_from_sorted(n, edges)` followed by
/// [`SpanningForest::query_subgraph`], but reads the component straight
/// out of the pop loop's own union-find instead of re-unioning the
/// selected edges a second time — the online serving path runs this once
/// per query, where the redundant pass dominated post-scoring latency.
pub fn swmst_from_sorted_with_component<I>(
    n: usize,
    edges: I,
    query: usize,
) -> (SpanningForest, Option<Vec<usize>>)
where
    I: IntoIterator<Item = Edge>,
{
    let (selected, mut uf) = pop_loop(n, edges);
    let component = (query < n).then(|| {
        let root = uf.find(query);
        (0..n).filter(|&v| uf.find(v) == root).collect()
    });
    (SpanningForest::new(n, selected), component)
}

/// The pop loop of Algorithm 1 shared by both `from_sorted` entry points:
/// consumes edges strongest-first until every node is covered, returning
/// the selected edges and the union-find whose partition is exactly the
/// selected forest's components.
// Indexing below is in-bounds by the explicit `u/v < n` guard on every
// edge before it is touched.
#[allow(clippy::indexing_slicing)]
fn pop_loop<I>(n: usize, edges: I) -> (Vec<Edge>, UnionFind)
where
    I: IntoIterator<Item = Edge>,
{
    let mut edges = edges.into_iter();
    let mut covered = vec![false; n];
    let mut n_covered = 0usize;
    let mut uf = UnionFind::new(n);
    let mut selected = Vec::new();

    while n_covered < n {
        let Some(edge) = edges.next() else {
            break; // isolated nodes remain — singleton subgraphs
        };
        if edge.u >= n || edge.v >= n {
            continue; // out-of-range endpoint: drop, never panic
        }
        let new_u = !covered[edge.u];
        let new_v = !covered[edge.v];
        // Keep the edge when it extends coverage or bridges two trees;
        // a pure intra-tree edge would close a cycle.
        if new_u || new_v || !uf.connected(edge.u, edge.v) {
            uf.union(edge.u, edge.v);
            selected.push(edge);
            if new_u {
                covered[edge.u] = true;
                n_covered += 1;
            }
            if new_v {
                covered[edge.v] = true;
                n_covered += 1;
            }
        }
    }
    (selected, uf)
}

/// Run SW-MST on `graph`; returns the spanning forest `G'`.
///
/// Ties in edge weight are broken by `(u, v)` order so results are
/// deterministic.
///
/// # Examples
/// ```
/// use soulmate_graph::{swmst, WeightedGraph};
///
/// // Two tight pairs and a weak bridge: the cut keeps the pairs apart.
/// let mut g = WeightedGraph::new(4);
/// g.add_edge(0, 1, 0.9).unwrap();
/// g.add_edge(2, 3, 0.8).unwrap();
/// g.add_edge(1, 2, 0.1).unwrap();
/// let forest = swmst(&g);
/// assert_eq!(forest.components(), vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn swmst(graph: &WeightedGraph) -> SpanningForest {
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.sort_by(stack_pop_order);
    swmst_from_sorted(graph.n_nodes(), edges)
}

/// The literal Algorithm 1: every popped edge is appended to `L'` (no
/// cycle check), stopping once all nodes are covered. `G'` may then contain
/// cycles; exposed for the fidelity comparison in the ablation bench.
pub fn swmst_literal(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.n_nodes();
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.sort_by(stack_pop_order);
    let mut covered = vec![false; n];
    let mut n_covered = 0usize;
    let mut selected = Vec::new();
    let mut popped = edges.into_iter();
    while n_covered < n {
        let Some(edge) = popped.next() else { break };
        selected.push(edge);
        for node in [edge.u, edge.v] {
            // `get_mut` rather than indexing: graph edges are validated on
            // insert, but the coverage walk stays total regardless.
            if let Some(c) = covered.get_mut(node) {
                if !*c {
                    *c = true;
                    n_covered += 1;
                }
            }
        }
    }
    SpanningForest::new(n, selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal_max_forest;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two dense communities with weak cross-links.
    fn two_communities() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        // Community A: 0,1,2 strongly tied.
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        g.add_edge(0, 2, 0.85).unwrap();
        // Community B: 3,4,5.
        g.add_edge(3, 4, 0.9).unwrap();
        g.add_edge(4, 5, 0.8).unwrap();
        g.add_edge(3, 5, 0.85).unwrap();
        // Weak bridge.
        g.add_edge(2, 3, 0.1).unwrap();
        g
    }

    #[test]
    fn covers_all_nodes() {
        let f = swmst(&two_communities());
        let all: usize = f.components().iter().map(Vec::len).sum();
        assert_eq!(all, 6);
    }

    #[test]
    fn strong_edges_selected_first() {
        let f = swmst(&two_communities());
        // The four strongest edges (0.9, 0.9, 0.85, 0.85) cover all six
        // nodes, so the weak 0.1 bridge is never popped into the forest.
        assert!(f.edges().iter().all(|e| e.w > 0.5));
        assert_eq!(f.components().len(), 2);
    }

    #[test]
    fn forest_is_acyclic() {
        let f = swmst(&two_communities());
        // A forest over c components of n nodes has n - c edges.
        assert_eq!(f.edges().len(), 6 - f.components().len());
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        let f = swmst(&g);
        let comps = f.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = WeightedGraph::new(3);
        let f = swmst(&g);
        assert_eq!(f.components().len(), 3);
        assert!(f.edges().is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        let f1 = swmst(&g);
        let f2 = swmst(&g);
        assert_eq!(f1.edges(), f2.edges());
    }

    #[test]
    fn literal_variant_may_keep_cycles_but_still_covers() {
        let f = swmst_literal(&two_communities());
        let all: usize = f.components().iter().map(Vec::len).sum();
        assert_eq!(all, 6);
        // Literal keeps every popped edge; with the strongest 4 edges the
        // coverage completes, possibly including a cycle (0-1,0-2,1-2).
        assert!(f.edges().len() >= swmst(&two_communities()).edges().len());
    }

    #[test]
    fn swmst_is_prefix_of_kruskal_selection() {
        // SW-MST is Kruskal's greedy with early termination at node
        // coverage: its selected edges must be a prefix of Kruskal's
        // selection order, and it can only stop with at least as many
        // (tighter) components.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(2..12);
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    g.add_edge(i, j, rng.gen_range(0.0..1.0)).unwrap();
                }
            }
            let a = swmst(&g);
            let b = kruskal_max_forest(&g);
            assert!(a.edges().len() <= b.edges().len());
            for (ea, eb) in a.edges().iter().zip(b.edges()) {
                assert_eq!(ea, eb, "swmst diverged from kruskal order");
            }
            assert!(a.components().len() >= b.components().len());
        }
    }

    #[test]
    fn from_sorted_matches_swmst_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..14);
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.6) {
                        g.add_edge(i, j, rng.gen_range(0.0..1.0)).unwrap();
                    }
                }
            }
            let mut sorted = g.edges().to_vec();
            sorted.sort_by(stack_pop_order);
            let a = swmst(&g);
            let b = swmst_from_sorted(n, sorted);
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn from_sorted_with_component_matches_query_subgraph() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let n = rng.gen_range(2..14);
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.4) {
                        g.add_edge(i, j, rng.gen_range(0.0..1.0)).unwrap();
                    }
                }
            }
            let mut sorted = g.edges().to_vec();
            sorted.sort_by(stack_pop_order);
            for query in 0..n {
                let (forest, component) =
                    swmst_from_sorted_with_component(n, sorted.clone(), query);
                let reference = swmst_from_sorted(n, sorted.clone());
                assert_eq!(forest.edges(), reference.edges());
                assert_eq!(component, reference.query_subgraph(query));
            }
            let (_, out_of_range) = swmst_from_sorted_with_component(n, sorted.clone(), n);
            assert_eq!(out_of_range, None);
        }
    }

    #[test]
    fn from_sorted_handles_empty_and_nodeless_inputs() {
        let f = swmst_from_sorted(3, Vec::new());
        assert_eq!(f.components().len(), 3);
        let f = swmst_from_sorted(0, Vec::new());
        assert!(f.components().is_empty());
    }

    #[test]
    fn stack_pop_order_tolerates_nan_weights() {
        // Edges built directly (bypassing add_edge validation) may carry
        // NaN; the total order must sort them instead of panicking, with
        // positive NaN strongest.
        let mut edges = vec![
            Edge { u: 0, v: 1, w: 0.5 },
            Edge {
                u: 1,
                v: 2,
                w: f32::NAN,
            },
            Edge { u: 2, v: 3, w: 0.9 },
        ];
        edges.sort_by(stack_pop_order);
        assert!(edges[0].w.is_nan());
        assert_eq!(edges[1].w, 0.9);
        assert_eq!(edges[2].w, 0.5);
    }

    proptest! {
        #[test]
        fn prop_swmst_is_forest_and_covers(
            edges in proptest::collection::vec((0usize..10, 0usize..10, 0.0f32..1.0), 0..40),
        ) {
            let mut g = WeightedGraph::new(10);
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            let f = swmst(&g);
            let comps = f.components();
            let covered: usize = comps.iter().map(Vec::len).sum();
            prop_assert_eq!(covered, 10);
            // Forest invariant: |E| = n - #components.
            prop_assert_eq!(f.edges().len(), 10 - comps.len());
        }

        #[test]
        fn prop_swmst_prefix_of_kruskal(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..1.0), 1..30),
        ) {
            let mut g = WeightedGraph::new(8);
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            let a = swmst(&g);
            let b = kruskal_max_forest(&g);
            prop_assert!(a.edges().len() <= b.edges().len());
            for (ea, eb) in a.edges().iter().zip(b.edges()) {
                prop_assert_eq!(ea, eb);
            }
        }
    }
}
