//! Stack-Wise Maximum Spanning Tree — the paper's Algorithm 1, implemented
//! faithfully.
//!
//! The algorithm pushes every edge onto a stack in *ascending* weight order
//! (weakest at the bottom), then pops — strongest first — appending each
//! popped edge to `L'` and its endpoints to `N'`, until every node of the
//! input graph has been covered. The components of the resulting `G'` are
//! the highly-correlated author subgraphs, each spanned by its strongest
//! edges.
//!
//! Two departures from the pseudocode, both forced by real inputs and
//! documented in DESIGN.md §5:
//!
//! 1. the pseudocode loops `while N'' ≠ ∅` — on a graph with isolated
//!    nodes the stack empties first, so we also stop on stack exhaustion
//!    (isolated nodes become singleton subgraphs);
//! 2. since the pseudocode performs no cycle check, a popped edge may join
//!    two already-covered nodes; we keep it only when it merges two
//!    components or covers a new node, which preserves the pseudocode's
//!    node-coverage semantics while keeping `G'` a forest (the "maximum
//!    spanning trees" the paper extracts from it). The
//!    [`swmst_literal`] variant keeps *every* popped edge for comparison.

use crate::forest::SpanningForest;
use crate::graph::{Edge, WeightedGraph};
use crate::unionfind::UnionFind;

/// Run SW-MST on `graph`; returns the spanning forest `G'`.
///
/// Ties in edge weight are broken by `(u, v)` order so results are
/// deterministic.
///
/// # Examples
/// ```
/// use soulmate_graph::{swmst, WeightedGraph};
///
/// // Two tight pairs and a weak bridge: the cut keeps the pairs apart.
/// let mut g = WeightedGraph::new(4);
/// g.add_edge(0, 1, 0.9).unwrap();
/// g.add_edge(2, 3, 0.8).unwrap();
/// g.add_edge(1, 2, 0.1).unwrap();
/// let forest = swmst(&g);
/// assert_eq!(forest.components(), vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn swmst(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.n_nodes();
    // Stack in ascending order → iterate from the top (descending).
    let mut stack: Vec<Edge> = graph.edges().to_vec();
    stack.sort_by(|a, b| {
        a.w.partial_cmp(&b.w)
            .unwrap()
            .then(b.u.cmp(&a.u))
            .then(b.v.cmp(&a.v))
    });

    let mut covered = vec![false; n];
    let mut n_covered = 0usize;
    let mut uf = UnionFind::new(n);
    let mut selected = Vec::new();

    while n_covered < n {
        let Some(edge) = stack.pop() else {
            break; // isolated nodes remain — singleton subgraphs
        };
        let new_u = !covered[edge.u];
        let new_v = !covered[edge.v];
        // Keep the edge when it extends coverage or bridges two trees;
        // a pure intra-tree edge would close a cycle.
        if new_u || new_v || !uf.connected(edge.u, edge.v) {
            uf.union(edge.u, edge.v);
            selected.push(edge);
            if new_u {
                covered[edge.u] = true;
                n_covered += 1;
            }
            if new_v {
                covered[edge.v] = true;
                n_covered += 1;
            }
        }
    }
    SpanningForest::new(n, selected)
}

/// The literal Algorithm 1: every popped edge is appended to `L'` (no
/// cycle check), stopping once all nodes are covered. `G'` may then contain
/// cycles; exposed for the fidelity comparison in the ablation bench.
pub fn swmst_literal(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.n_nodes();
    let mut stack: Vec<Edge> = graph.edges().to_vec();
    stack.sort_by(|a, b| {
        a.w.partial_cmp(&b.w)
            .unwrap()
            .then(b.u.cmp(&a.u))
            .then(b.v.cmp(&a.v))
    });
    let mut covered = vec![false; n];
    let mut n_covered = 0usize;
    let mut selected = Vec::new();
    while n_covered < n {
        let Some(edge) = stack.pop() else { break };
        selected.push(edge);
        for node in [edge.u, edge.v] {
            if !covered[node] {
                covered[node] = true;
                n_covered += 1;
            }
        }
    }
    SpanningForest::new(n, selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal_max_forest;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two dense communities with weak cross-links.
    fn two_communities() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        // Community A: 0,1,2 strongly tied.
        g.add_edge(0, 1, 0.9).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        g.add_edge(0, 2, 0.85).unwrap();
        // Community B: 3,4,5.
        g.add_edge(3, 4, 0.9).unwrap();
        g.add_edge(4, 5, 0.8).unwrap();
        g.add_edge(3, 5, 0.85).unwrap();
        // Weak bridge.
        g.add_edge(2, 3, 0.1).unwrap();
        g
    }

    #[test]
    fn covers_all_nodes() {
        let f = swmst(&two_communities());
        let all: usize = f.components().iter().map(Vec::len).sum();
        assert_eq!(all, 6);
    }

    #[test]
    fn strong_edges_selected_first() {
        let f = swmst(&two_communities());
        // The four strongest edges (0.9, 0.9, 0.85, 0.85) cover all six
        // nodes, so the weak 0.1 bridge is never popped into the forest.
        assert!(f.edges().iter().all(|e| e.w > 0.5));
        assert_eq!(f.components().len(), 2);
    }

    #[test]
    fn forest_is_acyclic() {
        let f = swmst(&two_communities());
        // A forest over c components of n nodes has n - c edges.
        assert_eq!(f.edges().len(), 6 - f.components().len());
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        let f = swmst(&g);
        let comps = f.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = WeightedGraph::new(3);
        let f = swmst(&g);
        assert_eq!(f.components().len(), 3);
        assert!(f.edges().is_empty());
    }

    #[test]
    fn deterministic_under_ties() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        let f1 = swmst(&g);
        let f2 = swmst(&g);
        assert_eq!(f1.edges(), f2.edges());
    }

    #[test]
    fn literal_variant_may_keep_cycles_but_still_covers() {
        let f = swmst_literal(&two_communities());
        let all: usize = f.components().iter().map(Vec::len).sum();
        assert_eq!(all, 6);
        // Literal keeps every popped edge; with the strongest 4 edges the
        // coverage completes, possibly including a cycle (0-1,0-2,1-2).
        assert!(f.edges().len() >= swmst(&two_communities()).edges().len());
    }

    #[test]
    fn swmst_is_prefix_of_kruskal_selection() {
        // SW-MST is Kruskal's greedy with early termination at node
        // coverage: its selected edges must be a prefix of Kruskal's
        // selection order, and it can only stop with at least as many
        // (tighter) components.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(2..12);
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    g.add_edge(i, j, rng.gen_range(0.0..1.0)).unwrap();
                }
            }
            let a = swmst(&g);
            let b = kruskal_max_forest(&g);
            assert!(a.edges().len() <= b.edges().len());
            for (ea, eb) in a.edges().iter().zip(b.edges()) {
                assert_eq!(ea, eb, "swmst diverged from kruskal order");
            }
            assert!(a.components().len() >= b.components().len());
        }
    }

    proptest! {
        #[test]
        fn prop_swmst_is_forest_and_covers(
            edges in proptest::collection::vec((0usize..10, 0usize..10, 0.0f32..1.0), 0..40),
        ) {
            let mut g = WeightedGraph::new(10);
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            let f = swmst(&g);
            let comps = f.components();
            let covered: usize = comps.iter().map(Vec::len).sum();
            prop_assert_eq!(covered, 10);
            // Forest invariant: |E| = n - #components.
            prop_assert_eq!(f.edges().len(), 10 - comps.len());
        }

        #[test]
        fn prop_swmst_prefix_of_kruskal(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.0f32..1.0), 1..30),
        ) {
            let mut g = WeightedGraph::new(8);
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            let a = swmst(&g);
            let b = kruskal_max_forest(&g);
            prop_assert!(a.edges().len() <= b.edges().len());
            for (ea, eb) in a.edges().iter().zip(b.edges()) {
                prop_assert_eq!(ea, eb);
            }
        }
    }
}
