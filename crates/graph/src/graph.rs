//! The authors' weighted graph (paper Definition 6).

use crate::error::GraphError;

/// One undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Similarity weight.
    pub w: f32,
}

/// An undirected weighted graph over dense node ids `0..n`.
///
/// The author-linking pipeline builds it from an `n x n` similarity matrix;
/// [`WeightedGraph::from_similarity`] offers threshold and per-node top-k
/// sparsification, since a fully connected 400-node graph has ~80 K edges
/// of which the weak majority only slow the spanning-tree cut down.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<Edge>,
}

impl WeightedGraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Add an undirected edge.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] for bad endpoints (self-loops are
    /// rejected the same way), [`GraphError::NonFiniteWeight`] for NaN/inf.
    pub fn add_edge(&mut self, a: usize, b: usize, w: f32) -> Result<(), GraphError> {
        if a >= self.n || b >= self.n || a == b {
            return Err(GraphError::NodeOutOfRange {
                node: a.max(b),
                n: self.n,
            });
        }
        if !w.is_finite() {
            return Err(GraphError::NonFiniteWeight(w));
        }
        self.edges.push(Edge {
            u: a.min(b),
            v: a.max(b),
            w,
        });
        Ok(())
    }

    /// Build from a full symmetric similarity matrix (`sim[i][j]`).
    ///
    /// Keeps edge `(i, j)` when `sim >= min_similarity` **or** `j` is among
    /// `i`'s `top_k` strongest neighbours (so every node keeps a lifeline
    /// into the graph even under aggressive thresholds).
    ///
    /// # Errors
    /// [`GraphError::NotSquare`] when the matrix is ragged.
    // Every row is verified to have length `n` before the loops below, and
    // `keep` is allocated `n * n`; all indices are `i, j < n`, so the
    // unchecked indexing in these hot sparsification loops cannot panic.
    #[allow(clippy::indexing_slicing)]
    pub fn from_similarity(
        sim: &[Vec<f32>],
        min_similarity: f32,
        top_k: usize,
    ) -> Result<Self, GraphError> {
        let n = sim.len();
        for row in sim {
            if row.len() != n {
                return Err(GraphError::NotSquare {
                    rows: n,
                    cols: row.len(),
                });
            }
        }
        let mut keep = vec![false; n * n];
        for i in 0..n {
            // Threshold rule.
            for j in (i + 1)..n {
                if sim[i][j] >= min_similarity {
                    keep[i * n + j] = true;
                }
            }
            // Top-k lifeline rule: similarity descending under the total
            // order, ties by ascending index — the ranking a stable
            // descending sort would produce, but the index tie-break makes
            // keys unique, so an O(n) selection yields the identical top-k
            // set without the O(n log n) full row sort. A NaN similarity
            // (all-OOV author) ranks instead of panicking — the
            // finite-weight filter below still keeps NaN edges out of the
            // graph.
            if top_k > 0 && n > 1 {
                let mut neighbours: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                let cmp = |&a: &usize, &b: &usize| sim[i][b].total_cmp(&sim[i][a]).then(a.cmp(&b));
                if neighbours.len() > top_k {
                    neighbours.select_nth_unstable_by(top_k - 1, cmp);
                    neighbours.truncate(top_k);
                }
                for &j in &neighbours {
                    let (a, b) = (i.min(j), i.max(j));
                    keep[a * n + b] = true;
                }
            }
        }
        let mut g = WeightedGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if keep[i * n + j] && sim[i][j].is_finite() {
                    g.edges.push(Edge {
                        u: i,
                        v: j,
                        w: sim[i][j],
                    });
                }
            }
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mean edge weight (0 for an edgeless graph).
    pub fn avg_weight(&self) -> f32 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.w).sum::<f32>() / self.edges.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_validates() {
        let mut g = WeightedGraph::new(3);
        assert!(g.add_edge(0, 1, 0.5).is_ok());
        assert!(g.add_edge(0, 3, 0.5).is_err());
        assert!(g.add_edge(1, 1, 0.5).is_err());
        assert!(g.add_edge(0, 2, f32::NAN).is_err());
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn edges_are_normalized_to_u_less_than_v() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(2, 0, 1.0).unwrap();
        assert_eq!(g.edges()[0].u, 0);
        assert_eq!(g.edges()[0].v, 2);
    }

    fn sim3() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.9, 0.1],
            vec![0.9, 1.0, 0.2],
            vec![0.1, 0.2, 1.0],
        ]
    }

    #[test]
    fn from_similarity_threshold_only() {
        let g = WeightedGraph::from_similarity(&sim3(), 0.5, 0).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edges()[0], Edge { u: 0, v: 1, w: 0.9 });
    }

    #[test]
    fn from_similarity_topk_keeps_lifelines() {
        let g = WeightedGraph::from_similarity(&sim3(), 0.5, 1).unwrap();
        // Node 2's best neighbour (1, sim 0.2) must be kept.
        assert!(g.edges().iter().any(|e| e.u == 1 && e.v == 2));
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn from_similarity_rejects_ragged() {
        let bad = vec![vec![1.0, 0.5], vec![0.5]];
        assert!(matches!(
            WeightedGraph::from_similarity(&bad, 0.0, 0),
            Err(GraphError::NotSquare { .. })
        ));
    }

    #[test]
    fn avg_weight() {
        let mut g = WeightedGraph::new(3);
        assert_eq!(g.avg_weight(), 0.0);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        assert_eq!(g.avg_weight(), 2.0);
    }

    #[test]
    fn from_similarity_tolerates_nan_rows() {
        // An author with no usable content can produce a NaN similarity
        // row; the top-k sort must not panic and NaN edges must be dropped.
        let sim = vec![
            vec![1.0, f32::NAN, 0.4],
            vec![f32::NAN, 1.0, f32::NAN],
            vec![0.4, f32::NAN, 1.0],
        ];
        let g = WeightedGraph::from_similarity(&sim, f32::NEG_INFINITY, 2).unwrap();
        assert!(g.edges().iter().all(|e| e.w.is_finite()));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edges()[0], Edge { u: 0, v: 2, w: 0.4 });
    }

    #[test]
    fn zero_threshold_full_graph() {
        let g = WeightedGraph::from_similarity(&sim3(), f32::NEG_INFINITY, 0).unwrap();
        assert_eq!(g.n_edges(), 3);
    }
}
