//! The authors' weighted graph and the stack-wise maximum-spanning-tree
//! graph cut (Problem 3; Section 4.2.2, Algorithm 1).
//!
//! * [`WeightedGraph`] — undirected weighted graph over dense node ids,
//!   buildable from a full similarity matrix with threshold/top-k
//!   sparsification;
//! * [`swmst()`] — the paper's SW-MST (Algorithm 1): edges pushed onto a
//!   stack in ascending weight order, popped (descending) and accumulated
//!   until every node is covered; the resulting forest's connected
//!   components are the linked-author subgraphs;
//! * [`swmst_from_sorted`] — the pop loop alone, for callers that keep an
//!   edge list already in [`stack_pop_order`] (the online query engine
//!   merges per-query edges into a cached sorted base list);
//! * [`kruskal_max_forest`] — the classical maximum-spanning-forest
//!   reference (used to cross-check SW-MST and in the ablation bench);
//! * [`SpanningForest`] — shared result type with component extraction and
//!   the query-subgraph lookup of Definition 7.

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]
// Index-based loops are used deliberately where two mirrored cells of a
// symmetric matrix (or several parallel arrays) are written per step —
// iterator rewrites obscure those invariants.
#![allow(clippy::needless_range_loop)]
// The no-panic guarantee of the serving path (DESIGN.md §12): production
// code in this crate must return typed errors, never panic. Tests are
// exempt; justified exceptions carry local `#[allow]`s with proof comments.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod error;
pub mod forest;
pub mod graph;
pub mod kruskal;
pub mod swmst;
pub mod unionfind;

pub use error::GraphError;
pub use forest::SpanningForest;
pub use graph::{Edge, WeightedGraph};
pub use kruskal::kruskal_max_forest;
pub use swmst::{
    stack_pop_order, swmst, swmst_from_sorted, swmst_from_sorted_with_component, swmst_literal,
};
pub use unionfind::UnionFind;
