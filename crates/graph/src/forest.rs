//! Spanning forests: the output `G'` of the graph cut, with component
//! (subgraph) extraction and the query-subgraph lookup of Definition 7.

use crate::graph::Edge;
use crate::unionfind::UnionFind;

/// A forest over the original graph's nodes: the selected edges of `G'`.
#[derive(Debug, Clone)]
pub struct SpanningForest {
    n: usize,
    edges: Vec<Edge>,
}

impl SpanningForest {
    /// Wrap selected edges over `n` nodes.
    pub fn new(n: usize, edges: Vec<Edge>) -> Self {
        SpanningForest { n, edges }
    }

    /// Node count of the underlying graph.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// The selected edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mean selected-edge weight — the `Avg(L')` returned by Algorithm 1.
    pub fn avg_weight(&self) -> f32 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.w).sum::<f32>() / self.edges.len() as f32
    }

    /// Total selected-edge weight.
    pub fn total_weight(&self) -> f32 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Connected components (the linked-author subgraphs), each a sorted
    /// node list; ordered by smallest member. Isolated nodes form
    /// singleton components.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            // `SpanningForest::new` accepts arbitrary edge lists; skip
            // out-of-range endpoints instead of panicking in union-find.
            if e.u < self.n && e.v < self.n {
                uf.union(e.u, e.v);
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for v in 0..self.n {
            groups.entry(uf.find(v)).or_default().push(v);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        // Every group holds at least one node (created on first push);
        // `first()` keeps the sort panic-free without an unwrap.
        out.sort_by_key(|c| c.first().copied().unwrap_or(usize::MAX));
        out
    }

    /// The query subgraph `g̃_q` (Definition 7): nodes of the component
    /// containing `query`, or `None` when `query` is out of range.
    ///
    /// Extracts only the one component the query lives in — one union-find
    /// pass over the selected edges plus a root scan — instead of
    /// materializing every component the way [`SpanningForest::components`]
    /// does. The serving path calls this once per query, and the grouping
    /// hash map dominated per-query latency before this fast path.
    pub fn query_subgraph(&self, query: usize) -> Option<Vec<usize>> {
        if query >= self.n {
            return None;
        }
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            // `SpanningForest::new` accepts arbitrary edge lists; skip
            // out-of-range endpoints instead of panicking in union-find.
            if e.u < self.n && e.v < self.n {
                uf.union(e.u, e.v);
            }
        }
        let root = uf.find(query);
        Some((0..self.n).filter(|&v| uf.find(v) == root).collect())
    }

    /// Edges internal to one component (for per-subgraph statistics).
    pub fn component_edges(&self, component: &[usize]) -> Vec<Edge> {
        self.edges
            .iter()
            .filter(|e| {
                component.binary_search(&e.u).is_ok() && component.binary_search(&e.v).is_ok()
            })
            .copied()
            .collect()
    }

    /// Mean edge weight within one component (0 for singletons).
    pub fn component_avg_weight(&self, component: &[usize]) -> f32 {
        let edges = self.component_edges(component);
        if edges.is_empty() {
            return 0.0;
        }
        edges.iter().map(|e| e.w).sum::<f32>() / edges.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> SpanningForest {
        // Components: {0,1,2} (edges 0-1, 1-2), {3,4}, {5} isolated.
        SpanningForest::new(
            6,
            vec![
                Edge { u: 0, v: 1, w: 0.9 },
                Edge { u: 1, v: 2, w: 0.7 },
                Edge { u: 3, v: 4, w: 0.5 },
            ],
        )
    }

    #[test]
    fn components_partition_nodes() {
        let f = forest();
        let comps = f.components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn query_subgraph_finds_component() {
        let f = forest();
        assert_eq!(f.query_subgraph(2), Some(vec![0, 1, 2]));
        assert_eq!(f.query_subgraph(5), Some(vec![5]));
        assert_eq!(f.query_subgraph(99), None);
    }

    #[test]
    fn weights() {
        let f = forest();
        assert!((f.avg_weight() - 0.7).abs() < 1e-6);
        assert!((f.total_weight() - 2.1).abs() < 1e-6);
        assert!((f.component_avg_weight(&[0, 1, 2]) - 0.8).abs() < 1e-6);
        assert_eq!(f.component_avg_weight(&[5]), 0.0);
    }

    #[test]
    fn component_edges_filters() {
        let f = forest();
        assert_eq!(f.component_edges(&[0, 1, 2]).len(), 2);
        assert_eq!(f.component_edges(&[3, 4]).len(), 1);
        assert!(f.component_edges(&[5]).is_empty());
    }

    #[test]
    fn empty_forest_all_singletons() {
        let f = SpanningForest::new(3, vec![]);
        assert_eq!(f.components().len(), 3);
        assert_eq!(f.avg_weight(), 0.0);
    }
}
