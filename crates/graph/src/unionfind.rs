//! Disjoint-set union with path halving and union by size.

/// Union-find over dense ids `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

// Node ids are dense `0..n` by the constructor's contract, and every
// in-crate caller (`swmst_from_sorted`, `SpanningForest::components`)
// range-checks ids before handing them over, so the unchecked indexing in
// the path-halving/union hot loops cannot go out of bounds.
#[allow(clippy::indexing_slicing)]
impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `false` when already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_sets_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.size_of(2), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.size_of(0), 4);
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.components(), 2);
    }

    proptest! {
        #[test]
        fn prop_components_equals_n_minus_successful_unions(
            pairs in proptest::collection::vec((0usize..12, 0usize..12), 0..30),
        ) {
            let mut uf = UnionFind::new(12);
            let mut merges = 0usize;
            for (a, b) in pairs {
                if uf.union(a, b) {
                    merges += 1;
                }
            }
            prop_assert_eq!(uf.components(), 12 - merges);
        }

        #[test]
        fn prop_connectivity_is_transitive(
            pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..16),
        ) {
            let mut uf = UnionFind::new(8);
            for &(a, b) in &pairs {
                uf.union(a, b);
            }
            for a in 0..8 {
                for b in 0..8 {
                    for c in 0..8 {
                        if uf.connected(a, b) && uf.connected(b, c) {
                            prop_assert!(uf.connected(a, c));
                        }
                    }
                }
            }
        }
    }
}
