//! Error type for graph construction.

use std::fmt;

/// Errors raised by graph routines.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id exceeded the graph size.
    NodeOutOfRange { node: usize, n: usize },
    /// A similarity matrix was not square.
    NotSquare { rows: usize, cols: usize },
    /// An edge weight was not finite.
    NonFiniteWeight(f32),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            GraphError::NotSquare { rows, cols } => {
                write!(f, "similarity matrix must be square, got {rows}x{cols}")
            }
            GraphError::NonFiniteWeight(w) => write!(f, "edge weight {w} is not finite"),
        }
    }
}

impl std::error::Error for GraphError {}
