//! Classical Kruskal maximum spanning forest — the textbook reference
//! against which SW-MST is validated (they are the same greedy algorithm
//! expressed differently; the paper's stack is just an explicit
//! descending-order iteration).

use crate::forest::SpanningForest;
use crate::graph::{Edge, WeightedGraph};
use crate::swmst::stack_pop_order;
use crate::unionfind::UnionFind;

/// Kruskal's algorithm with weights maximized: sort edges descending (the
/// same total [`stack_pop_order`] SW-MST pops in, so NaN weights sort
/// instead of panicking), add each edge that joins two distinct components.
pub fn kruskal_max_forest(graph: &WeightedGraph) -> SpanningForest {
    let n = graph.n_nodes();
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.sort_by(stack_pop_order);
    let mut uf = UnionFind::new(n);
    let mut selected = Vec::with_capacity(n.saturating_sub(1));
    for e in edges {
        if uf.union(e.u, e.v) {
            selected.push(e);
            if uf.components() == 1 {
                break;
            }
        }
    }
    SpanningForest::new(n, selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_maximum_tree() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        g.add_edge(2, 3, 3.0).unwrap();
        g.add_edge(0, 3, 0.5).unwrap();
        g.add_edge(0, 2, 0.1).unwrap();
        let f = kruskal_max_forest(&g);
        assert_eq!(f.edges().len(), 3);
        assert!((f.total_weight() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let f = kruskal_max_forest(&g);
        assert_eq!(f.components().len(), 3); // {0,1} {2,3} {4}
        assert_eq!(f.edges().len(), 2);
    }

    #[test]
    fn prefers_heavier_parallel_paths() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 0.2).unwrap();
        g.add_edge(0, 2, 0.9).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        let f = kruskal_max_forest(&g);
        let weights: Vec<f32> = f.edges().iter().map(|e| e.w).collect();
        assert_eq!(weights.len(), 2);
        assert!(weights.contains(&0.9) && weights.contains(&0.8));
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::new(2);
        let f = kruskal_max_forest(&g);
        assert!(f.edges().is_empty());
        assert_eq!(f.components().len(), 2);
    }
}
