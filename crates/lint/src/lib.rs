//! # soulmate-lint
//!
//! A zero-dependency workspace lint engine: a hand-rolled Rust [`lexer`]
//! feeds a token-level rule [`engine`] that enforces, as real static
//! analysis, the invariants this repo previously kept alive with a CI
//! grep and per-crate clippy attributes:
//!
//! - `nan-comparator` — no `partial_cmp(..)` chained into `.unwrap()`;
//! - `non-atomic-write` — no `File::create`/`fs::write` to final paths;
//! - `panic-in-serving` — no panicking constructs in core/graph/cli/
//!   retrieval/serve library code, plus `linalg/src/quant.rs` whose i8
//!   decode path serves untrusted snapshots (the DESIGN.md §12
//!   guarantee);
//! - `allow-without-proof` — every `#[allow]` carries a justification;
//! - `unguarded-as-cast` — narrowing casts carry proof comments;
//! - `todo-marker` — no work-in-progress markers on main;
//! - `no-unsafe` — token-level double-check of `#![forbid(unsafe_code)]`.
//!
//! On top of the token rules, a lightweight [`syntax`] layer (block
//! tree + item boundaries) and [`scopes`] (mutex-guard live ranges)
//! power the concurrency pack of [`rules_concurrency`]:
//!
//! - `lock-order` — inverted nested acquisition order within a file;
//! - `blocking-under-lock` — I/O, fits, sleeps, or a second `.lock()`
//!   while a guard is live;
//! - `lock-unwrap` — `.lock().unwrap()/.expect()` in serving code;
//! - `condvar-no-loop` — `Condvar::wait*` outside a predicate loop;
//!
//! and a cross-file phase checks `metric-name-drift`: literal obs
//! registry names vs. the DESIGN.md §11 inventory, both directions
//! (see [`metrics`]).
//!
//! Diagnostics are span-accurate (`file:line:col`), rule IDs are stable,
//! and per-line suppressions (`lint:allow(rule) -- reason`) *require* a
//! written reason. Run it as:
//!
//! ```text
//! cargo run -p soulmate-lint -- [--format text|json|sarif] [--design DESIGN.md] [paths…]
//! ```
//!
//! See DESIGN.md §13 for the lexer model, the rule catalog, the
//! suppression syntax, and the output schemas.

// The linter guards the workspace's no-unsafe guarantee; it must hold
// itself to the same bar.
#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod metrics;
pub mod rules;
pub mod rules_concurrency;
pub mod sarif;
pub mod scopes;
pub mod syntax;
pub mod walk;

pub use diag::{render_json, render_text, sort_canonical, Diagnostic};
pub use engine::{analyze_source, lint_source};
pub use sarif::render_sarif;
pub use walk::collect_rs_files;

use std::path::{Path, PathBuf};

/// Lint every `.rs` file reachable from `roots` (per-file rules only);
/// returns canonically sorted diagnostics (by path, line, col, rule).
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    lint_paths_with_design(roots, None)
}

/// Lint every `.rs` file reachable from `roots`, then — when a design
/// document is supplied — run the cross-file `metric-name-drift` phase
/// against its §11 metric inventory. Returns canonically sorted
/// diagnostics (by path, line, col, rule).
pub fn lint_paths_with_design(
    roots: &[PathBuf],
    design: Option<&Path>,
) -> std::io::Result<Vec<Diagnostic>> {
    let files = collect_rs_files(roots)?;
    let mut out = Vec::new();
    let mut sites = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy().replace('\\', "/");
        let analysis = analyze_source(&label, &src);
        out.extend(analysis.diags);
        sites.extend(analysis.metric_sites);
    }
    if let Some(design_path) = design {
        let design_src = std::fs::read_to_string(design_path)?;
        let label = design_path.to_string_lossy().replace('\\', "/");
        metrics::check_drift(&sites, &label, &design_src, &mut out);
    }
    sort_canonical(&mut out);
    Ok(out)
}
