//! # soulmate-lint
//!
//! A zero-dependency workspace lint engine: a hand-rolled Rust [`lexer`]
//! feeds a token-level rule [`engine`] that enforces, as real static
//! analysis, the invariants this repo previously kept alive with a CI
//! grep and per-crate clippy attributes:
//!
//! - `nan-comparator` — no `partial_cmp(..)` chained into `.unwrap()`;
//! - `non-atomic-write` — no `File::create`/`fs::write` to final paths;
//! - `panic-in-serving` — no panicking constructs in core/graph/cli/
//!   retrieval/serve library code, plus `linalg/src/quant.rs` whose i8
//!   decode path serves untrusted snapshots (the DESIGN.md §12
//!   guarantee);
//! - `allow-without-proof` — every `#[allow]` carries a justification;
//! - `unguarded-as-cast` — narrowing casts carry proof comments;
//! - `todo-marker` — no work-in-progress markers on main;
//! - `no-unsafe` — token-level double-check of `#![forbid(unsafe_code)]`.
//!
//! Diagnostics are span-accurate (`file:line:col`), rule IDs are stable,
//! and per-line suppressions (`lint:allow(rule) -- reason`) *require* a
//! written reason. Run it as:
//!
//! ```text
//! cargo run -p soulmate-lint -- [--json] [paths…]
//! ```
//!
//! See DESIGN.md §13 for the lexer model, the rule catalog, the
//! suppression syntax, and the JSON diagnostic schema.

// The linter guards the workspace's no-unsafe guarantee; it must hold
// itself to the same bar.
#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use diag::{render_json, render_text, sort_canonical, Diagnostic};
pub use engine::lint_source;
pub use walk::collect_rs_files;

use std::path::PathBuf;

/// Lint every `.rs` file reachable from `roots`; returns canonically
/// sorted diagnostics (by path, line, col, rule).
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    let files = collect_rs_files(roots)?;
    let mut out = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy().replace('\\', "/");
        out.extend(lint_source(&label, &src));
    }
    sort_canonical(&mut out);
    Ok(out)
}
