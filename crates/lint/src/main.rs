//! CLI for `soulmate-lint`.
//!
//! ```text
//! soulmate-lint [--format text|json|sarif] [--design PATH] [--list-rules] [paths…]
//! ```
//!
//! Paths default to the current directory. The cross-file
//! `metric-name-drift` phase runs against the document given by
//! `--design`, or against `./DESIGN.md` when it exists (checkouts
//! without one simply skip the phase). Exit codes: 0 = clean,
//! 1 = diagnostics found, 2 = usage or I/O error.

// Same guarantee as the library (binaries are separate crate roots).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: soulmate-lint [--format text|json|sarif] [--design PATH] [--list-rules] [paths…]\n\
       --format FMT   output format: text (default), json, or sarif (2.1.0)\n\
       --json         alias for --format json\n\
       --design PATH  design document for the metric-name-drift phase\n\
                      (defaults to ./DESIGN.md when present)\n\
       --list-rules   print `id\\tsummary` per catalog rule and exit\n\
       paths default to `.`; directories are walked recursively for .rs files\n\
       (skipping target/, .git/ and fixtures/ directories)";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut design: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        let got = other.unwrap_or("nothing");
                        eprintln!(
                            "error: `--format` expects text|json|sarif, got `{got}`\n{USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--design" => {
                let Some(path) = args.next() else {
                    eprintln!("error: `--design` expects a path\n{USAGE}");
                    return ExitCode::from(2);
                };
                design = Some(PathBuf::from(path));
            }
            "--list-rules" => {
                for (id, summary) in soulmate_lint::rules::CATALOG {
                    println!("{id}\t{summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("."));
    }
    // An explicit --design must exist (exit 2 below via the I/O error);
    // the implicit default only engages when the file is present.
    if design.is_none() {
        let default = PathBuf::from("DESIGN.md");
        if default.is_file() {
            design = Some(default);
        }
    }

    let diags = match soulmate_lint::lint_paths_with_design(&roots, design.as_deref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => print!("{}", soulmate_lint::render_json(&diags)),
        Format::Sarif => print!("{}", soulmate_lint::render_sarif(&diags)),
        Format::Text => {
            print!("{}", soulmate_lint::render_text(&diags));
            eprintln!(
                "soulmate-lint: {} diagnostic{} ({} rule{} in catalog)",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
                soulmate_lint::rules::CATALOG.len(),
                if soulmate_lint::rules::CATALOG.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
