//! CLI for `soulmate-lint`.
//!
//! ```text
//! soulmate-lint [--json] [paths…]
//! ```
//!
//! Paths default to the current directory. Exit codes: 0 = clean,
//! 1 = diagnostics found, 2 = usage or I/O error.

// Same guarantee as the library (binaries are separate crate roots).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: soulmate-lint [--json] [paths…]\n\
       paths default to `.`; directories are walked recursively for .rs files\n\
       (skipping target/, .git/ and fixtures/ directories)";

fn main() -> ExitCode {
    let mut json = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("."));
    }

    let diags = match soulmate_lint::lint_paths(&roots) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", soulmate_lint::render_json(&diags));
    } else {
        print!("{}", soulmate_lint::render_text(&diags));
        eprintln!(
            "soulmate-lint: {} diagnostic{} ({} rule{} in catalog)",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            soulmate_lint::rules::CATALOG.len(),
            if soulmate_lint::rules::CATALOG.len() == 1 {
                ""
            } else {
                "s"
            },
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
