//! Deterministic file discovery: expand lint roots into a sorted list of
//! `.rs` files, skipping build output (`target`), VCS metadata (`.git`),
//! and lint-fixture corpora (`fixtures` directories hold deliberate
//! violations for the linter's own tests).

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Expand `roots` (files or directories) into `.rs` file paths. Directory
/// entries are visited in sorted order so the file list — and therefore
/// diagnostic ordering and JSON output — is reproducible across runs and
/// filesystems.
///
/// Overlapping roots (`crates crates/serve`, `. ./crates`, absolute +
/// relative spellings) reach the same file under several display paths;
/// files are deduplicated by canonical identity, keeping the first
/// spelling encountered, so no file is linted — and no finding
/// reported — twice.
pub fn collect_rs_files(roots: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut seen: HashSet<PathBuf> = HashSet::new();
    for root in roots {
        if root.is_dir() {
            walk_dir(root, &mut files, &mut seen)?;
        } else if root.is_file() {
            push_file(root.clone(), &mut files, &mut seen);
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("lint root not found: {}", root.display()),
            ));
        }
    }
    files.sort();
    Ok(files)
}

/// Record `path` unless its canonical identity was already seen. A path
/// that fails to canonicalize (racing deletion) keys on its raw
/// spelling — still deduplicating exact repeats.
fn push_file(path: PathBuf, files: &mut Vec<PathBuf>, seen: &mut HashSet<PathBuf>) {
    let key = std::fs::canonicalize(&path).unwrap_or_else(|_| path.clone());
    if seen.insert(key) {
        files.push(path);
    }
}

fn walk_dir(dir: &Path, files: &mut Vec<PathBuf>, seen: &mut HashSet<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_dir(&path, files, seen)?;
            }
        } else if name.ends_with(".rs") {
            push_file(path, files, seen);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_root_is_an_error() {
        let err = collect_rs_files(&[PathBuf::from("definitely/not/here")]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn skips_fixture_dirs_and_sorts() {
        let dir = std::env::temp_dir().join(format!("soulmate_lint_walk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("b/fixtures")).unwrap();
        std::fs::create_dir_all(dir.join("a")).unwrap();
        std::fs::write(dir.join("b/fixtures/bad.rs"), "unsafe {}").unwrap();
        std::fs::write(dir.join("b/ok.rs"), "fn f() {}").unwrap();
        std::fs::write(dir.join("a/first.rs"), "fn g() {}").unwrap();
        std::fs::write(dir.join("notes.txt"), "not rust").unwrap();
        let files = collect_rs_files(&[dir.clone()]).unwrap();
        let rel: Vec<String> = files
            .iter()
            .map(|p| {
                p.strip_prefix(&dir)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        assert_eq!(rel, vec!["a/first.rs", "b/ok.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overlapping_roots_yield_each_file_once() {
        let dir = std::env::temp_dir().join(format!("soulmate_lint_dedup_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/serve")).unwrap();
        std::fs::write(dir.join("crates/serve/s.rs"), "fn f() {}").unwrap();
        std::fs::write(dir.join("crates/top.rs"), "fn g() {}").unwrap();

        // Same tree under different spellings: parent + child root,
        // a `.`-prefixed respelling, and the file named directly.
        let roots = vec![
            dir.join("crates"),
            dir.join("crates/serve"),
            dir.join("crates").join(".").join("serve"),
            dir.join("crates/serve/s.rs"),
        ];
        let files = collect_rs_files(&roots).unwrap();
        let mut names: Vec<String> = files
            .iter()
            .map(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string()
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["s.rs", "top.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
