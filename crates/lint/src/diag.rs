//! Diagnostics and their two render targets: human text and a
//! deterministic JSON document for CI baseline diffing.

use std::fmt::Write as _;

/// One lint finding, anchored to a `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path exactly as the file was reached from the lint roots.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column within the line.
    pub col: u32,
    /// Stable rule ID (see the catalog in `rules`).
    pub rule: &'static str,
    /// Human explanation, including how to fix or suppress.
    pub message: String,
}

/// Sort diagnostics into the canonical order used by both render targets:
/// by path, then line, then column, then rule ID. The order is total and
/// input-independent, so repeated runs over the same tree byte-compare
/// equal — a requirement for diffable CI baselines.
pub fn sort_canonical(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Render `path:line:col: rule-id: message`, one diagnostic per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}: {}",
            d.path, d.line, d.col, d.rule, d.message
        );
    }
    out
}

/// Render the JSON document described in DESIGN.md §13: fixed key order,
/// diagnostics pre-sorted canonically, trailing newline, no whitespace
/// variation — byte-for-byte reproducible for identical inputs.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"version\":1,\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_string(&d.path),
            d.line,
            d.col,
            json_string(d.rule),
            json_string(&d.message)
        );
    }
    let _ = write!(out, "],\"total\":{}}}", diags.len());
    out.push('\n');
    out
}

/// Escape a string for JSON output (the crate is std-only by design, so
/// no serde here; mirrors the escaping rules of RFC 8259). Shared with
/// the SARIF renderer.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // char → u32 is the identity on code points
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32); // identity cast, as above
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(path: &str, line: u32, col: u32, rule: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.into(),
            line,
            col,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn canonical_sort_orders_by_path_line_col_rule() {
        let mut v = vec![
            d("b.rs", 1, 1, "todo-marker"),
            d("a.rs", 2, 5, "no-unsafe"),
            d("a.rs", 2, 5, "nan-comparator"),
            d("a.rs", 1, 9, "no-unsafe"),
        ];
        sort_canonical(&mut v);
        let order: Vec<_> = v
            .iter()
            .map(|x| (x.path.clone(), x.line, x.col, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 1, 9, "no-unsafe"),
                ("a.rs".to_string(), 2, 5, "nan-comparator"),
                ("a.rs".to_string(), 2, 5, "no-unsafe"),
                ("b.rs".to_string(), 1, 1, "todo-marker"),
            ]
        );
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{0001}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_is_stable() {
        assert_eq!(
            render_json(&[]),
            "{\"version\":1,\"diagnostics\":[],\"total\":0}\n"
        );
    }
}
