//! A hand-rolled lexer for (a linting-sufficient subset of) Rust.
//!
//! The lexer's job is to let rules reason about *tokens* instead of lines,
//! so that a `partial_cmp(..)` whose `.unwrap()` lands on the next line —
//! or an `unwrap()` hidden inside a raw string, a nested block comment, or
//! a `//` inside a string literal — is classified correctly. It handles
//! every Rust surface form that matters for that goal:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* .. */ .. */`), kept separately from the token stream with
//!   start/end line spans so rules can look for adjacent justifications;
//! - string literals with escapes, byte strings, and raw (byte) strings
//!   `r"…"` / `r#"…"#` / `br##"…"##` with any hash depth;
//! - char literals vs. lifetimes (`'a'` vs `'a`), including escaped chars
//!   (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! - raw identifiers (`r#fn`), numbers with suffixes/exponents, and
//!   single-byte punctuation.
//!
//! Every token and comment carries a 1-based `line` and `col` (byte column
//! within the line), which become the `file:line:col` of diagnostics.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `unsafe`, `r#fn`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// String literal of any flavor (plain, byte, raw), quotes included.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (including suffix, e.g. `1_000u32`, `1.5e-3`).
    Num,
    /// A single punctuation byte (`.`, `(`, `[`, `#`, `!`, …).
    Punct,
}

/// One lexed token with its source text and position.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// The exact source slice of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte within its line.
    pub col: u32,
}

impl<'a> Token<'a> {
    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the single punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        // callers pass ASCII punctuation chars, for which the u8 cast is exact
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment (line or block), excluded from the token stream.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Full text including the `//` / `/*` markers.
    pub text: &'a str,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (equal to `line` for `//`).
    pub end_line: u32,
    /// 1-based byte column of the comment's first byte.
    pub col: u32,
    /// True when nothing but whitespace precedes the comment on its
    /// starting line — i.e. the comment owns the line.
    pub own_line: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting at `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: u32,
    line_start: usize,
    /// Whether a token has already been emitted on the current line
    /// (drives [`Comment::own_line`]).
    line_has_token: bool,
}

impl<'a> Cursor<'a> {
    fn col(&self, at: usize) -> u32 {
        // Columns are 1-based byte offsets within the line; the repo is
        // ASCII-dominant so this matches editors' column display.
        (at - self.line_start + 1) as u32 // lint:allow(unguarded-as-cast) -- source lines are far shorter than u32::MAX bytes
    }

    fn newline(&mut self, at: usize) {
        self.line += 1;
        self.line_start = at + 1;
        self.line_has_token = false;
    }
}

/// Lex `src` into tokens and comments. Never fails: unterminated strings
/// or comments simply extend to end-of-file (the compiler will reject the
/// file anyway; the linter must not panic on it).
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        line_start: 0,
        line_has_token: false,
    };
    let mut out = Lexed::default();

    while cur.i < cur.bytes.len() {
        let b = cur.bytes[cur.i];
        match b {
            b'\n' => {
                cur.newline(cur.i);
                cur.i += 1;
            }
            b' ' | b'\t' | b'\r' => cur.i += 1,
            b'/' if cur.bytes.get(cur.i + 1) == Some(&b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.bytes.get(cur.i + 1) == Some(&b'*') => {
                lex_block_comment(&mut cur, &mut out)
            }
            b'"' => lex_string(&mut cur, &mut out),
            b'\'' => lex_char_or_lifetime(&mut cur, &mut out),
            _ if is_ident_start(b) => lex_ident_or_prefixed(&mut cur, &mut out),
            _ if b.is_ascii_digit() => lex_number(&mut cur, &mut out),
            _ => {
                let start = cur.i;
                cur.i += utf8_len(b);
                let end = cur.i;
                push_token(&mut cur, &mut out, TokenKind::Punct, start, end);
            }
        }
    }
    out
}

fn push_token<'a>(
    cur: &mut Cursor<'a>,
    out: &mut Lexed<'a>,
    kind: TokenKind,
    start: usize,
    end: usize,
) {
    out.tokens.push(Token {
        kind,
        text: &cur.src[start..end],
        line: cur.line,
        col: cur.col(start),
    });
    cur.line_has_token = true;
}

fn lex_line_comment<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    let own_line = !cur.line_has_token;
    let line = cur.line;
    let col = cur.col(start);
    while cur.i < cur.bytes.len() && cur.bytes[cur.i] != b'\n' {
        cur.i += 1;
    }
    out.comments.push(Comment {
        text: &cur.src[start..cur.i],
        line,
        end_line: line,
        col,
        own_line,
    });
}

fn lex_block_comment<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    let own_line = !cur.line_has_token;
    let line = cur.line;
    let col = cur.col(start);
    cur.i += 2;
    let mut depth = 1usize;
    while cur.i < cur.bytes.len() && depth > 0 {
        if cur.bytes[cur.i] == b'/' && cur.bytes.get(cur.i + 1) == Some(&b'*') {
            depth += 1;
            cur.i += 2;
        } else if cur.bytes[cur.i] == b'*' && cur.bytes.get(cur.i + 1) == Some(&b'/') {
            depth -= 1;
            cur.i += 2;
        } else {
            if cur.bytes[cur.i] == b'\n' {
                cur.newline(cur.i);
            }
            cur.i += 1;
        }
    }
    out.comments.push(Comment {
        text: &cur.src[start..cur.i],
        line,
        end_line: cur.line,
        col,
        own_line,
    });
}

/// Lex a plain (non-raw) string starting at the opening `"`; handles
/// `\"` and `\\` escapes and embedded newlines.
fn lex_string<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    let line = cur.line;
    let col = cur.col(start);
    cur.i += 1;
    string_tail(cur, out, start, line, col);
}

/// Scan a plain string body from just after the opening quote, then push
/// the token. An escaped newline (line continuation) still advances the
/// line counter — skipping it silently would shift every later span.
fn string_tail<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>, start: usize, line: u32, col: u32) {
    while cur.i < cur.bytes.len() {
        match cur.bytes[cur.i] {
            b'\\' => {
                if cur.bytes.get(cur.i + 1) == Some(&b'\n') {
                    cur.newline(cur.i + 1);
                }
                cur.i += 2;
            }
            b'"' => {
                cur.i += 1;
                break;
            }
            b'\n' => {
                cur.newline(cur.i);
                cur.i += 1;
            }
            other => cur.i += utf8_len(other),
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: &cur.src[start..cur.i.min(cur.bytes.len())],
        line,
        col,
    });
    cur.line_has_token = true;
}

/// Lex a raw string whose `r`/`br` prefix has already been consumed and
/// whose hashes start at `cur.i`. Terminates at `"` followed by the same
/// number of `#`s; no escapes exist inside.
fn lex_raw_string<'a>(
    cur: &mut Cursor<'a>,
    out: &mut Lexed<'a>,
    start: usize,
    line: u32,
    col: u32,
) {
    let mut hashes = 0usize;
    while cur.bytes.get(cur.i) == Some(&b'#') {
        hashes += 1;
        cur.i += 1;
    }
    debug_assert_eq!(cur.bytes.get(cur.i), Some(&b'"'));
    cur.i += 1;
    while cur.i < cur.bytes.len() {
        if cur.bytes[cur.i] == b'"' {
            let after = cur.i + 1;
            if cur.bytes.len() >= after + hashes
                && cur.bytes[after..after + hashes].iter().all(|&h| h == b'#')
            {
                cur.i = after + hashes;
                break;
            }
            cur.i += 1;
        } else {
            if cur.bytes[cur.i] == b'\n' {
                cur.newline(cur.i);
            }
            cur.i += 1;
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: &cur.src[start..cur.i.min(cur.bytes.len())],
        line,
        col,
    });
    cur.line_has_token = true;
}

/// After a `'`, decide between a char literal and a lifetime.
///
/// Grammar facts this relies on: a char literal holds exactly one
/// (possibly escaped) character and a closing `'`; a lifetime is `'` plus
/// an identifier and is *not* followed by `'`.
fn lex_char_or_lifetime<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    cur.i += 1;
    match cur.bytes.get(cur.i) {
        Some(&b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            cur.i += 1;
            if cur.bytes.get(cur.i) == Some(&b'u') {
                while cur.i < cur.bytes.len()
                    && cur.bytes[cur.i] != b'}'
                    && cur.bytes[cur.i] != b'\n'
                {
                    cur.i += 1;
                }
                if cur.bytes.get(cur.i) == Some(&b'}') {
                    cur.i += 1;
                }
            } else if let Some(&e) = cur.bytes.get(cur.i) {
                // A literal newline after the backslash is invalid Rust;
                // leave it for the main loop so line accounting stays
                // in sync even on files rustc would reject.
                if e != b'\n' {
                    cur.i += utf8_len(e);
                }
            }
            if cur.bytes.get(cur.i) == Some(&b'\'') {
                cur.i += 1;
            }
            push_token(cur, out, TokenKind::Char, start, cur.i.min(cur.bytes.len()));
        }
        Some(&b) if is_ident_start(b) => {
            let mut e = cur.i;
            while e < cur.bytes.len() && is_ident_continue(cur.bytes[e]) {
                e += 1;
            }
            if cur.bytes.get(e) == Some(&b'\'') {
                // 'a' — a char literal (identifiers of length >1 followed
                // by `'` cannot occur in valid Rust).
                cur.i = e + 1;
                push_token(cur, out, TokenKind::Char, start, cur.i);
            } else {
                // 'a, 'static, '_, 'outer: — a lifetime or loop label.
                cur.i = e;
                push_token(cur, out, TokenKind::Lifetime, start, cur.i);
            }
        }
        // A bare `'` at end of line (invalid Rust): emit the quote as
        // punctuation and let the main loop account for the newline.
        Some(&b'\n') => push_token(cur, out, TokenKind::Punct, start, cur.i),
        Some(&b) => {
            // ' ' or '(' etc: a one-char literal.
            cur.i += utf8_len(b);
            if cur.bytes.get(cur.i) == Some(&b'\'') {
                cur.i += 1;
            }
            push_token(cur, out, TokenKind::Char, start, cur.i.min(cur.bytes.len()));
        }
        None => push_token(cur, out, TokenKind::Punct, start, cur.bytes.len()),
    }
}

/// Lex an identifier, dispatching the string-prefix forms `r"…"`,
/// `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw identifiers `r#ident`.
fn lex_ident_or_prefixed<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    let line = cur.line;
    let col = cur.col(start);
    while cur.i < cur.bytes.len() && is_ident_continue(cur.bytes[cur.i]) {
        cur.i += 1;
    }
    let ident = &cur.src[start..cur.i];
    let next = cur.bytes.get(cur.i).copied();
    match (ident, next) {
        ("r" | "br", Some(b'"')) => lex_raw_string(cur, out, start, line, col),
        ("r" | "br", Some(b'#')) => {
            // Either a raw string `r#"…"#` or a raw identifier `r#ident`.
            let mut j = cur.i;
            while cur.bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            if cur.bytes.get(j) == Some(&b'"') {
                lex_raw_string(cur, out, start, line, col);
            } else if ident == "r"
                && j == cur.i + 1
                && cur.bytes.get(j).is_some_and(|&b| is_ident_start(b))
            {
                cur.i = j;
                while cur.i < cur.bytes.len() && is_ident_continue(cur.bytes[cur.i]) {
                    cur.i += 1;
                }
                push_token(cur, out, TokenKind::Ident, start, cur.i);
            } else {
                push_token(cur, out, TokenKind::Ident, start, cur.i);
            }
        }
        // After the ident loop `cur.i` already sits on the opening quote.
        ("b", Some(b'"')) => lex_string_with_prefix(cur, out, start, line, col),
        ("b", Some(b'\'')) => {
            // Byte char literal b'x': delegate to the char lexer but keep
            // the `b` prefix inside the token span.
            cur.i += 1; // past the opening quote
            lex_byte_char_tail(cur, out, start, line, col);
        }
        _ => push_token(cur, out, TokenKind::Ident, start, cur.i),
    }
}

/// Finish lexing `b"…"` after the `b` prefix (cursor sits on the quote).
fn lex_string_with_prefix<'a>(
    cur: &mut Cursor<'a>,
    out: &mut Lexed<'a>,
    start: usize,
    line: u32,
    col: u32,
) {
    cur.i += 1; // past the opening quote
    string_tail(cur, out, start, line, col);
}

/// Finish lexing `b'…'` after the opening quote.
fn lex_byte_char_tail<'a>(
    cur: &mut Cursor<'a>,
    out: &mut Lexed<'a>,
    start: usize,
    line: u32,
    col: u32,
) {
    if cur.bytes.get(cur.i) == Some(&b'\\') {
        cur.i += 1;
        // The escaped byte — but never a raw newline (invalid Rust);
        // leaving it to the main loop keeps line accounting in sync.
        if cur.bytes.get(cur.i).is_some_and(|&b| b != b'\n') {
            cur.i += 1;
        }
    } else if cur.bytes.get(cur.i).is_some_and(|&b| b != b'\n') {
        cur.i += 1;
    }
    if cur.bytes.get(cur.i) == Some(&b'\'') {
        cur.i += 1;
    }
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text: &cur.src[start..cur.i.min(cur.bytes.len())],
        line,
        col,
    });
    cur.line_has_token = true;
}

/// Lex a numeric literal: integers, floats, hex/oct/bin, `_` separators,
/// type suffixes, and exponents with signs (`1.5e-3`). Range expressions
/// (`0..n`) are *not* swallowed: a `.` is only consumed when followed by a
/// digit.
fn lex_number<'a>(cur: &mut Cursor<'a>, out: &mut Lexed<'a>) {
    let start = cur.i;
    let mut prev = 0u8;
    while cur.i < cur.bytes.len() {
        let b = cur.bytes[cur.i];
        let next_is_digit = || cur.bytes.get(cur.i + 1).is_some_and(|n| n.is_ascii_digit());
        let continues = is_ident_continue(b)
            || (b == b'.' && prev != b'.' && next_is_digit())
            || ((b == b'+' || b == b'-') && (prev == b'e' || prev == b'E') && next_is_digit());
        if !continues {
            break;
        }
        prev = b;
        cur.i += 1;
    }
    push_token(cur, out, TokenKind::Num, start, cur.i);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_containing_unwrap_is_one_str_token() {
        let src = r###"let s = r#"x.partial_cmp(y).unwrap()"#; s.len()"###;
        let lx = lex(src);
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("unwrap")));
        // `unwrap` / `partial_cmp` must NOT appear as identifier tokens.
        assert!(!idents(src).contains(&"unwrap"));
        assert!(!idents(src).contains(&"partial_cmp"));
        assert!(idents(src).contains(&"len"));
    }

    #[test]
    fn raw_string_hash_depths() {
        let src = r####"let a = r"no hash"; let b = r##"has "# inside"##; done()"####;
        assert!(idents(src).contains(&"done"));
        let strs: Vec<_> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].contains(r##""# inside"##));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let lx = lex(src);
        assert_eq!(idents(src), vec!["a", "b"]);
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comment_marker_inside_string_is_not_a_comment() {
        let src = r#"let url = "https://example.com"; after()"#;
        let lx = lex(src);
        assert!(lx.comments.is_empty());
        assert!(idents(src).contains(&"after"));
    }

    #[test]
    fn string_with_escaped_quote_and_backslash() {
        let src = r#"let s = "she said \"hi\" \\"; tail()"#;
        assert!(idents(src).contains(&"tail"));
        assert_eq!(
            lex(src)
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } let q = '\\''; let u = '\\u{1F600}'; loop_label: for _ in 0..1 {}";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\''", "'\\u{1F600}'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "let s: &'static str = x; let r: &'_ u8 = y;";
        let lifetimes: Vec<_> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect::<Vec<_>>();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
    }

    #[test]
    fn raw_identifier() {
        let src = "let r#fn = 1; use_it(r#fn)";
        let ids = idents(src);
        assert!(ids.contains(&"r#fn"));
        assert!(ids.contains(&"use_it"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r##"let a = b"bytes"; let c = b'\n'; let d = br#"raw bytes"#; end()"##;
        let lx = lex(src);
        assert!(idents(src).contains(&"end"));
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            2
        );
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..n { let x = 1.5e-3; let y = 0xFFu32; }";
        let lx = lex(src);
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3", "0xFFu32"]);
        assert!(idents(src).contains(&"n"));
    }

    #[test]
    fn line_and_col_are_one_based_and_accurate() {
        let src = "ab\n  cd(ef)";
        let lx = lex(src);
        let cd = lx.tokens.iter().find(|t| t.text == "cd").expect("cd");
        assert_eq!((cd.line, cd.col), (2, 3));
        let ef = lx.tokens.iter().find(|t| t.text == "ef").expect("ef");
        assert_eq!((ef.line, ef.col), (2, 6));
    }

    #[test]
    fn multiline_block_comment_spans_lines_and_tracks_own_line() {
        let src = "x; /* one\ntwo\nthree */ y;\n  // own line\nz; // trailing";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 3);
        assert_eq!((lx.comments[0].line, lx.comments[0].end_line), (1, 3));
        assert!(!lx.comments[0].own_line);
        assert!(lx.comments[1].own_line);
        assert!(!lx.comments[2].own_line);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // A `\` line continuation inside a string spans two physical
        // lines; tokens after it must land on the right line.
        let src = "let s = \"one\\\n two\";\nafter();";
        let lx = lex(src);
        let after = lx.tokens.iter().find(|t| t.text == "after").expect("after");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in [
            "let s = \"open",
            "/* never closed",
            "r#\"open raw",
            "let c = '",
        ] {
            let _ = lex(src);
        }
    }

    /// Line of the first token named `name`.
    fn line_of(src: &str, name: &str) -> u32 {
        lex(src)
            .tokens
            .iter()
            .find(|t| t.text == name)
            .unwrap_or_else(|| panic!("token {name:?} not found"))
            .line
    }

    #[test]
    fn crlf_line_endings_count_like_lf() {
        // The same source under LF and CRLF must agree on every line
        // number — CRLF checkouts (core.autocrlf on Windows) are real.
        let lf = "fn a() {}\nfn b() {}\n// note\nfn c() {}\n";
        let crlf = lf.replace('\n', "\r\n");
        for name in ["a", "b", "c"] {
            assert_eq!(line_of(lf, name), line_of(&crlf, name), "token {name}");
        }
        let (l, c) = (lex(lf), lex(&crlf));
        assert_eq!(l.comments[0].line, c.comments[0].line);
    }

    #[test]
    fn crlf_inside_strings_comments_and_raw_strings() {
        let lf = "let s = \"one\ntwo\";\nlet r = r#\"three\nfour\"#;\n/* five\nsix */\nafter();\n";
        let crlf = lf.replace('\n', "\r\n");
        assert_eq!(line_of(lf, "after"), 7);
        assert_eq!(line_of(&crlf, "after"), 7);
    }

    #[test]
    fn crlf_escaped_line_continuation_in_string() {
        // `\` + CRLF continuation: the `\r` sits between the backslash
        // and the `\n`; the line still advances exactly once.
        let src = "let s = \"one\\\r\n two\";\r\nafter();";
        assert_eq!(line_of(src, "after"), 3);
    }

    #[test]
    fn invalid_quote_before_newline_keeps_line_accounting() {
        // Invalid Rust (rustc rejects it), but the linter must not let
        // a stray quote swallow the newline and shift every later span.
        for src in [
            "let c = '\nafter();",    // bare ' at end of line
            "let c = '\\\nafter();",  // '\ at end of line
            "let c = b'\nafter();",   // b' at end of line
            "let c = b'\\\nafter();", // b'\ at end of line
            "let c = '\r\nafter();",  // CRLF variants
            "let c = b'\\\r\nafter();",
        ] {
            assert_eq!(line_of(src, "after"), 2, "src: {src:?}");
        }
    }
}
