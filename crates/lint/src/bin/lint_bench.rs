//! Wall-clock benchmark of the linter itself: lex + per-file rules +
//! the cross-file drift phase over the whole workspace, reported as
//! `BENCH_lint.json` next to the other `BENCH_*.json` records. The
//! linter runs on every CI push, so its cost is part of the loop a
//! contributor waits on; the budget (DESIGN.md §13) is five seconds
//! for the full tree.
//!
//! ```text
//! cargo run --release -p soulmate-lint --bin lint_bench -- [--out PATH] [paths…]
//! ```
//!
//! Paths default to `crates src examples` (run it from the repo root);
//! `./DESIGN.md` drives the drift phase when present.

// Same guarantee as the library (binaries are separate crate roots).
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Timed lint passes; the first (untimed) pass warms the page cache so
/// the numbers measure the linter, not the filesystem.
const RUNS: u32 = 5;

/// `y-m-d` (UTC) from a Unix timestamp — Howard Hinnant's
/// `civil_from_days`, kept in `u64` so no cast can narrow.
fn civil_date(secs: u64) -> String {
    let days = secs / 86_400;
    let z = days + 719_468;
    let era = z / 146_097;
    let doe = z % 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + u64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn run() -> Result<(), String> {
    let mut out_path = PathBuf::from("BENCH_lint.json");
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "`--out` expects a path".to_string())?,
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!(
                    "unknown flag `{flag}`\nusage: lint_bench [--out PATH] [paths…]"
                ));
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots = ["crates", "src", "examples"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.is_dir())
            .collect();
        if roots.is_empty() {
            return Err("no default roots here; pass paths explicitly".to_string());
        }
    }
    let design = Path::new("DESIGN.md")
        .is_file()
        .then(|| PathBuf::from("DESIGN.md"));

    let files = soulmate_lint::collect_rs_files(&roots).map_err(|e| e.to_string())?;
    // Warmup, also the source of the reported diagnostic count.
    let diags = soulmate_lint::lint_paths_with_design(&roots, design.as_deref())
        .map_err(|e| e.to_string())?;

    let mut seconds = Vec::with_capacity(RUNS.try_into().unwrap_or(0));
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let again = soulmate_lint::lint_paths_with_design(&roots, design.as_deref())
            .map_err(|e| e.to_string())?;
        seconds.push(t0.elapsed().as_secs_f64());
        if again.len() != diags.len() {
            return Err("diagnostic count changed between timed runs".to_string());
        }
    }
    let best = seconds.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = seconds.iter().sum::<f64>() / f64::from(RUNS);

    let date = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| civil_date(d.as_secs()))
        .unwrap_or_else(|_| "unknown".to_string());
    let payload = format!(
        concat!(
            "{{\n",
            "  \"description\": \"Wall-clock cost of a full soulmate-lint run (lex, per-file rules, cross-file metric-name-drift) over the workspace. Budget: whole tree under 5 seconds, so the lint step never dominates a CI push.\",\n",
            "  \"command\": \"cargo run --release -p soulmate-lint --bin lint_bench\",\n",
            "  \"date\": \"{date}\",\n",
            "  \"files\": {files},\n",
            "  \"diagnostics\": {diags},\n",
            "  \"runs\": {runs},\n",
            "  \"wall_seconds_best\": {best:.6},\n",
            "  \"wall_seconds_mean\": {mean:.6}\n",
            "}}\n"
        ),
        date = date,
        files = files.len(),
        diags = diags.len(),
        runs = RUNS,
        best = best,
        mean = mean,
    );

    // Sibling temp file + rename: same atomic-publish protocol the
    // non-atomic-write rule demands of the workspace.
    let tmp = out_path.with_extension("json.tmp");
    std::fs::write(&tmp, &payload).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, &out_path).map_err(|e| e.to_string())?;
    eprintln!(
        "lint_bench: {} files, {} diagnostics, best {:.3}s / mean {:.3}s over {} runs -> {}",
        files.len(),
        diags.len(),
        best,
        mean,
        RUNS,
        out_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
