//! The rule catalog. Every rule has a stable kebab-case ID (used in
//! diagnostics, `lint:allow(…)` suppressions, and CI baselines) and
//! encodes one invariant this workspace previously enforced by grep or
//! convention. See DESIGN.md §13 for the full catalog documentation.

use crate::diag::Diagnostic;
use crate::engine::{Bless, Ctx};
use crate::lexer::{Token, TokenKind};

use crate::metrics::METRIC_NAME_DRIFT;
use crate::rules_concurrency::{BLOCKING_UNDER_LOCK, CONDVAR_NO_LOOP, LOCK_ORDER, LOCK_UNWRAP};

pub const NAN_COMPARATOR: &str = "nan-comparator";
pub const NON_ATOMIC_WRITE: &str = "non-atomic-write";
pub const PANIC_IN_SERVING: &str = "panic-in-serving";
pub const ALLOW_WITHOUT_PROOF: &str = "allow-without-proof";
pub const UNGUARDED_AS_CAST: &str = "unguarded-as-cast";
pub const TODO_MARKER: &str = "todo-marker";
pub const NO_UNSAFE: &str = "no-unsafe";
/// Meta-rule: a malformed `lint:allow` comment. Not itself suppressible.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// `(id, summary)` for every rule, in catalog order.
pub const CATALOG: &[(&str, &str)] = &[
    (NAN_COMPARATOR, "partial_cmp(..) chained into .unwrap()/.expect() panics on NaN; use total_cmp"),
    (NON_ATOMIC_WRITE, "File::create/fs::write to a final path can leave torn files; write to a temp path and rename"),
    (PANIC_IN_SERVING, "unwrap/expect/panic!/unreachable!/indexing in core, graph, cli or serve library code breaks the no-panic serving guarantee"),
    (ALLOW_WITHOUT_PROOF, "#[allow(..)] needs an adjacent comment justifying it"),
    (UNGUARDED_AS_CAST, "narrowing `as` cast needs an adjacent proof comment"),
    (TODO_MARKER, "TODO/FIXME/XXX markers and todo!/unimplemented! must not land on main"),
    (NO_UNSAFE, "the workspace is 100% safe Rust; `unsafe` is forbidden"),
    (LOCK_ORDER, "two mutexes nested in inverted order across functions in one file risks deadlock; pick one acquisition order"),
    (BLOCKING_UNDER_LOCK, "blocking call (I/O, Pipeline::fit, sleep, second .lock()) while a mutex guard is live stalls every thread behind the lock"),
    (LOCK_UNWRAP, ".lock().unwrap()/.expect() in serving code panics on poison and cascades; recover with unwrap_or_else(PoisonError::into_inner) or a typed error"),
    (CONDVAR_NO_LOOP, "Condvar::wait/wait_timeout outside a while/loop predicate loop proceeds on spurious wakeups; re-check the condition in a loop"),
    (METRIC_NAME_DRIFT, "obs metric literals and the DESIGN.md §11 inventory must agree in both directions (dynamic names are documented with a `(dynamic)` marker)"),
];

/// True for IDs accepted inside `lint:allow(…)`. `bad-suppression` is
/// deliberately excluded: the escape hatch cannot disable its own audit.
pub fn is_known_rule(id: &str) -> bool {
    CATALOG.iter().any(|(known, _)| *known == id)
}

/// Run every rule over one file's context.
pub fn run_all(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    nan_comparator(ctx, out);
    non_atomic_write(ctx, out);
    panic_in_serving(ctx, out);
    allow_without_proof(ctx, out);
    unguarded_as_cast(ctx, out);
    todo_marker(ctx, out);
    no_unsafe(ctx, out);
    crate::rules_concurrency::run_concurrency(ctx, out);
}

/// Index of the `)` matching the `(` at `open`, if any.
fn matching_paren(tokens: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// `nan-comparator`: a `partial_cmp(…)` whose result is immediately
/// `.unwrap()`ed or `.expect(…)`ed. Matched on tokens, so rustfmt line
/// breaks between the call and the unwrap cannot hide it (the failure
/// mode of the old `grep -A1` CI gate). Applies to test code too — a
/// NaN-panicking comparator in a test is still a latent flake.
fn nan_comparator(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") || !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        let chained_panic = tokens.get(close + 1).is_some_and(|d| d.is_punct('.'))
            && tokens
                .get(close + 2)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            && tokens.get(close + 3).is_some_and(|p| p.is_punct('('));
        if chained_panic {
            ctx.emit(
                out,
                t,
                NAN_COMPARATOR,
                "`partial_cmp(..)` chained into `.unwrap()`/`.expect(..)` panics on NaN; use `total_cmp` (or handle the `None`)".to_string(),
            );
        }
    }
}

/// `non-atomic-write`: `File::create(…)` / `fs::write(…)` aimed at a
/// final path in non-test code. A crash mid-write leaves a torn file at
/// the destination; the blessed pattern (corpus::io, obs::registry,
/// core::snapshot) creates a sibling temp file and renames it over the
/// target. A call whose path argument mentions `tmp`/`temp` is taken to
/// be the first half of that pattern and accepted.
fn non_atomic_write(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    // `tokens[i..]` starts `seg0::seg1(`?
    fn path_call(tokens: &[Token<'_>], i: usize, seg0: &str, seg1: &str) -> bool {
        tokens[i].is_ident(seg0)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(seg1))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
    }
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if !path_call(tokens, i, "File", "create") && !path_call(tokens, i, "fs", "write") {
            continue;
        }
        let (open, at) = (i + 4, &tokens[i]);
        if ctx.is_test(i) {
            continue;
        }
        let close = matching_paren(tokens, open).unwrap_or(tokens.len());
        let args_mention_temp = tokens[open..close.min(tokens.len())].iter().any(|t| {
            matches!(t.kind, TokenKind::Ident | TokenKind::Str) && {
                let lower = t.text.to_ascii_lowercase();
                lower.contains("tmp") || lower.contains("temp")
            }
        });
        if !args_mention_temp {
            ctx.emit(
                out,
                at,
                NON_ATOMIC_WRITE,
                "write to a final path is not atomic (a crash leaves a torn file); write to a sibling temp path and rename, like corpus::io::save_json".to_string(),
            );
        }
    }
}

/// Keywords that may legitimately precede a `[` without it being a
/// panicking index expression (slice patterns, array repeats, …).
const NON_INDEX_PREFIX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "mut", "ref", "if", "else", "match", "while", "loop", "move", "break",
    "continue", "as", "const", "static", "box", "yield",
];

/// `panic-in-serving`: `.unwrap()`, `.expect(…)`, `panic!`,
/// `unreachable!`, and slice-index expressions in library code of the
/// serving crates (core/graph/cli/retrieval/serve). Scopes carrying a
/// `#[allow(clippy::unwrap_used/expect_used/indexing_slicing)]` attribute
/// are blessed — the `allow-without-proof` rule separately guarantees
/// those carry a justification.
fn panic_in_serving(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.serving {
        return;
    }
    let tokens = ctx.tokens();
    for (i, t) in tokens.iter().enumerate() {
        if ctx.is_test(i) {
            continue;
        }
        let next_is_open_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct('.');
        // `.lock().unwrap()` is the sharper `lock-unwrap` rule's case
        // (poisoning semantics, dedicated fix advice) — defer to it so
        // one defect yields one diagnostic.
        let after_lock_call = i >= 4
            && tokens[i - 4].is_ident("lock")
            && tokens[i - 3].is_punct('(')
            && tokens[i - 2].is_punct(')')
            && prev_is_dot;
        if t.is_ident("unwrap")
            && next_is_open_paren
            && prev_is_dot
            && !after_lock_call
            && !ctx.is_blessed(i, Bless::Unwrap)
        {
            ctx.emit(
                out,
                t,
                PANIC_IN_SERVING,
                "`.unwrap()` in serving-path library code; return a typed `CoreError` instead (DESIGN.md §12)".to_string(),
            );
        }
        if t.is_ident("expect")
            && next_is_open_paren
            && prev_is_dot
            && !after_lock_call
            && !ctx.is_blessed(i, Bless::Expect)
        {
            ctx.emit(
                out,
                t,
                PANIC_IN_SERVING,
                "`.expect(..)` in serving-path library code; return a typed `CoreError` instead (DESIGN.md §12)".to_string(),
            );
        }
        if (t.is_ident("panic") || t.is_ident("unreachable"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            ctx.emit(
                out,
                t,
                PANIC_IN_SERVING,
                format!(
                    "`{}!` in serving-path library code; return `CoreError::Internal`/`Invalid` instead (DESIGN.md §12)",
                    t.text
                ),
            );
        }
        if t.is_punct('[') && i > 0 && !ctx.is_blessed(i, Bless::Index) {
            let prev = &tokens[i - 1];
            let postfix_index = match prev.kind {
                TokenKind::Ident => !NON_INDEX_PREFIX_KEYWORDS.contains(&prev.text),
                TokenKind::Punct => prev.is_punct(']') || prev.is_punct(')'),
                _ => false,
            };
            if postfix_index {
                ctx.emit(
                    out,
                    t,
                    PANIC_IN_SERVING,
                    "slice indexing in serving-path library code can panic; use `.get(..)` or bless the scope with `#[allow(clippy::indexing_slicing)]` plus a proof comment".to_string(),
                );
            }
        }
    }
}

/// `allow-without-proof`: every `#[allow(…)]`/`#![allow(…)]` in non-test
/// code must have a comment directly above it (or trailing on the same
/// line) saying *why* the lint is silenced. This is what makes blessed
/// scopes auditable instead of silent.
fn allow_without_proof(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let bracket = if tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            i + 2
        } else {
            i + 1
        };
        let is_allow = tokens.get(bracket).is_some_and(|t| t.is_punct('['))
            && tokens.get(bracket + 1).is_some_and(|t| t.is_ident("allow"));
        if !is_allow || ctx.is_test(i) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        if !ctx.has_adjacent_comment(line) && !ctx.is_suppressed(ALLOW_WITHOUT_PROOF, line) {
            ctx.emit(
                out,
                &tokens[i],
                ALLOW_WITHOUT_PROOF,
                "`#[allow(..)]` without an adjacent justification comment; say why the lint is silenced on the line above".to_string(),
            );
        }
        i = bracket + 1;
    }
}

/// Integer targets considered narrowing for `unguarded-as-cast`. The
/// check is purely token-level (no type inference), so widening casts to
/// these types are flagged too — the proof comment then simply states the
/// widening. 64-bit and float targets are exempt.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// `unguarded-as-cast`: `expr as u32`-style casts silently truncate or
/// saturate; each one needs an adjacent comment proving the value fits
/// (same line or the line above).
fn unguarded_as_cast(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") || ctx.is_test(i) {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !NARROWING_TARGETS.contains(&target.text) {
            continue;
        }
        if !ctx.has_adjacent_comment(t.line) {
            ctx.emit(
                out,
                t,
                UNGUARDED_AS_CAST,
                format!(
                    "narrowing `as {}` cast without a proof comment; state on this or the previous line why the value fits",
                    target.text
                ),
            );
        }
    }
}

/// `todo-marker`: work-in-progress markers in comments, and `todo!`/
/// `unimplemented!` invocations anywhere. Such markers do not belong on
/// main; file an issue instead.
fn todo_marker(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for c in ctx.comments() {
        for marker in ["TODO", "FIXME", "XXX"] {
            for (at, _) in c.text.match_indices(marker) {
                let before = c.text[..at].chars().next_back();
                let after = c.text[at + marker.len()..].chars().next();
                let isolated = !before.is_some_and(|b| b.is_ascii_alphanumeric())
                    && !after.is_some_and(|a| a.is_ascii_alphanumeric());
                if !isolated || ctx.is_suppressed(TODO_MARKER, c.line) {
                    continue;
                }
                // Report at the comment's start; interior lines of block
                // comments are folded up to it.
                out.push(Diagnostic {
                    path: ctx.path.to_string(),
                    line: c.line,
                    col: c.col,
                    rule: TODO_MARKER,
                    message: format!("`{marker}` marker in comment; resolve it or track it in an issue before merging"),
                });
            }
        }
    }
    let tokens = ctx.tokens();
    for (i, t) in tokens.iter().enumerate() {
        if (t.is_ident("todo") || t.is_ident("unimplemented"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            ctx.emit(
                out,
                t,
                TODO_MARKER,
                format!("`{}!` placeholder must not land on main", t.text),
            );
        }
    }
}

/// `no-unsafe`: the workspace is 100% safe Rust and every crate carries
/// `#![forbid(unsafe_code)]`; this rule double-checks at the token level
/// (catching e.g. a crate that lost its forbid attribute).
fn no_unsafe(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for t in ctx.tokens() {
        if t.is_ident("unsafe") {
            ctx.emit(
                out,
                t,
                NO_UNSAFE,
                "`unsafe` is forbidden in this workspace (100% safe Rust; every crate is #![forbid(unsafe_code)])".to_string(),
            );
        }
    }
}
