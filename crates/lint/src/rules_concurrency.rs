//! The concurrency rule pack: lock-discipline checks built on the
//! block tree of [`crate::syntax`] and the guard live ranges of
//! [`crate::scopes`]. These target the serving stack's hand-rolled
//! synchronization — the `Mutex+Condvar` connection queue, the
//! `EngineCell` hot-swap path, and the ingest/refit threads — where a
//! blocked or panicking lock holder stalls every request behind it.

use crate::diag::Diagnostic;
use crate::engine::Ctx;
use crate::lexer::{Token, TokenKind};
use crate::scopes::{collect_guards, GuardSite};
use crate::syntax::Syntax;
use std::collections::BTreeSet;

pub const LOCK_ORDER: &str = "lock-order";
pub const BLOCKING_UNDER_LOCK: &str = "blocking-under-lock";
pub const LOCK_UNWRAP: &str = "lock-unwrap";
pub const CONDVAR_NO_LOOP: &str = "condvar-no-loop";

/// Calls that block the current thread (I/O, fits, sleeps). Making one
/// while a mutex guard is live turns the lock into a convoy: every
/// other thread queues behind a syscall or a multi-second fit. The
/// list is deliberately conservative — names like `write` or `join`
/// are too common to match without type information.
const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "fit",
    "accept",
    "connect",
    "read_request",
    "write_response",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
    "recv",
    "recv_timeout",
];

fn is_p(tokens: &[Token<'_>], i: usize, p: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(p))
}

/// `tokens[i]` is the `lock` of a `<recv>.lock()` acquisition.
fn is_lock_call(tokens: &[Token<'_>], i: usize) -> bool {
    tokens[i].is_ident("lock")
        && i > 0
        && is_p(tokens, i - 1, '.')
        && is_p(tokens, i + 1, '(')
        && is_p(tokens, i + 2, ')')
}

/// Run the whole pack over one file.
pub fn run_concurrency(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    let syn = Syntax::build(tokens);
    let guards = collect_guards(tokens, &syn);
    lock_unwrap(ctx, out);
    blocking_under_lock(ctx, &guards, out);
    lock_order(ctx, &guards, out);
    condvar_no_loop(ctx, &syn, out);
}

/// `lock-unwrap`: `.lock().unwrap()` / `.lock().expect(…)` in serving
/// code. A panicking thread poisons the mutex, and poisoning then
/// panics every later locker — one bad request takes the whole server
/// down. Recover explicitly (`unwrap_or_else(PoisonError::into_inner)`
/// is the workspace idiom) or map to a typed error.
fn lock_unwrap(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.serving {
        return;
    }
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if !is_lock_call(tokens, i) || ctx.is_test(i) {
            continue;
        }
        let Some(m) = tokens.get(i + 4) else { continue };
        let panics = is_p(tokens, i + 3, '.')
            && (m.is_ident("unwrap") || m.is_ident("expect"))
            && is_p(tokens, i + 5, '(');
        if panics {
            ctx.emit(
                out,
                m,
                LOCK_UNWRAP,
                format!(
                    "`.lock().{}(..)` panics on a poisoned mutex and cascades across threads; recover with `unwrap_or_else(PoisonError::into_inner)` or map to a typed error",
                    m.text
                ),
            );
        }
    }
}

/// `blocking-under-lock`: a blocking call — or a second `.lock()` —
/// made while a guard is live. Condvar waits are exempt: atomically
/// releasing the lock is their whole point.
fn blocking_under_lock(ctx: &Ctx<'_>, guards: &[GuardSite], out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for g in guards {
        if ctx.is_test(g.lock_tok) {
            continue;
        }
        // Scan after the acquisition's closing paren.
        for k in g.lock_tok + 3..=g.live_to.min(tokens.len().saturating_sub(1)) {
            if ctx.is_test(k) {
                continue;
            }
            let t = &tokens[k];
            if t.kind != TokenKind::Ident || !is_p(tokens, k + 1, '(') {
                continue;
            }
            if is_lock_call(tokens, k) {
                ctx.emit(
                    out,
                    t,
                    BLOCKING_UNDER_LOCK,
                    format!(
                        "second `.lock()` while the `{}` guard from line {} is live; drop the first guard (or take both locks in one place) to avoid deadlock",
                        g.mutex, tokens[g.lock_tok].line
                    ),
                );
            } else if BLOCKING_CALLS.contains(&t.text) {
                ctx.emit(
                    out,
                    t,
                    BLOCKING_UNDER_LOCK,
                    format!(
                        "blocking call `{}(..)` while the `{}` guard from line {} is live stalls every thread behind the lock; drop the guard first",
                        t.text, g.mutex, tokens[g.lock_tok].line
                    ),
                );
            }
        }
    }
}

/// `lock-order`: within one file, two mutexes nested in one order in
/// one function and the inverted order in another. Token-level lock
/// identity is the dotted receiver path, so this sees exactly the
/// intra-file deadlocks that survive review because each function
/// looks fine on its own.
fn lock_order(ctx: &Ctx<'_>, guards: &[GuardSite], out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    // (outer mutex, inner mutex, inner lock token, fn name)
    let mut pairs: Vec<(&str, &str, usize, &str)> = Vec::new();
    for a in guards {
        if ctx.is_test(a.lock_tok) {
            continue;
        }
        for b in guards {
            if b.lock_tok > a.lock_tok && b.lock_tok <= a.live_to && a.mutex != b.mutex {
                pairs.push((&a.mutex, &b.mutex, b.lock_tok, &a.fn_name));
            }
        }
    }
    let mut reported: BTreeSet<(&str, &str)> = BTreeSet::new();
    for p in &pairs {
        for q in &pairs {
            if p.0 == q.1 && p.1 == q.0 && q.2 > p.2 {
                let key = if p.0 < p.1 { (p.0, p.1) } else { (p.1, p.0) };
                if !reported.insert(key) {
                    continue;
                }
                // Report at the later site; the earlier order wins.
                ctx.emit(
                    out,
                    &tokens[q.2],
                    LOCK_ORDER,
                    format!(
                        "`{}` then `{}` here in `{}` inverts the `{}` then `{}` order taken in `{}` (line {}); pick one acquisition order to avoid deadlock",
                        q.0, q.1, q.3, p.0, p.1, p.3, tokens[p.2].line
                    ),
                );
            }
        }
    }
}

/// `condvar-no-loop`: `.wait(guard)` / `.wait_timeout(guard, …)` not
/// inside a `loop`/`while`/`for` body within its function. Condvars
/// wake spuriously; a wait whose predicate is not re-checked in a loop
/// proceeds on state that may not hold. (`wait_while` re-checks
/// internally and is exempt.)
fn condvar_no_loop(ctx: &Ctx<'_>, syn: &Syntax, out: &mut Vec<Diagnostic>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !(t.is_ident("wait") || t.is_ident("wait_timeout")) || ctx.is_test(i) {
            continue;
        }
        // Shape: `.wait(<guard ident>` — the guard argument is what
        // separates a condvar wait from `Child::wait()` and friends.
        let shape = i > 0
            && is_p(tokens, i - 1, '.')
            && is_p(tokens, i + 1, '(')
            && tokens
                .get(i + 2)
                .is_some_and(|a| a.kind == TokenKind::Ident)
            && tokens
                .get(i + 3)
                .is_some_and(|a| a.is_punct(')') || a.is_punct(','));
        if shape && !syn.in_loop_within_fn(i) {
            ctx.emit(
                out,
                t,
                CONDVAR_NO_LOOP,
                format!(
                    "`.{}(..)` outside a predicate loop proceeds on spurious wakeups; re-check the condition in a `while`/`loop` (or use `wait_while`)",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::lint_source;

    const SERVING: &str = "crates/serve/src/fixture.rs";
    const PLAIN: &str = "crates/obs/src/fixture.rs";

    fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
        lint_source(path, src)
            .into_iter()
            .map(|d| (d.rule.to_string(), d.line))
            .collect()
    }

    #[test]
    fn lock_unwrap_flags_serving_only() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap(); use_it(&g); }\n";
        let hits = rules_at(SERVING, src);
        assert!(
            hits.iter().any(|(r, l)| r == "lock-unwrap" && *l == 1),
            "{hits:?}"
        );
        // Not a serving path → the sharper rule stays quiet.
        assert!(!rules_at(PLAIN, src).iter().any(|(r, _)| r == "lock-unwrap"));
    }

    #[test]
    fn lock_unwrap_does_not_double_report_as_panic_in_serving() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap(); use_it(&g); }\n";
        let hits = rules_at(SERVING, src);
        assert!(
            !hits.iter().any(|(r, _)| r == "panic-in-serving"),
            "{hits:?}"
        );
    }

    #[test]
    fn poison_recovery_idiom_is_clean() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap_or_else(|e| e.into_inner()); use_it(&g); }\n";
        assert!(rules_at(SERVING, src).is_empty());
    }

    #[test]
    fn blocking_call_under_live_guard_is_flagged() {
        let src = "fn f(&self) {\n    let g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n    thread::sleep(self.tick);\n    use_it(&g);\n}\n";
        let hits = rules_at(PLAIN, src);
        assert_eq!(hits, vec![("blocking-under-lock".to_string(), 3)]);
    }

    #[test]
    fn drop_before_blocking_call_is_clean() {
        let src = "fn f(&self) {\n    let g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n    drop(g);\n    thread::sleep(self.tick);\n}\n";
        assert!(rules_at(PLAIN, src).is_empty());
    }

    #[test]
    fn second_lock_under_live_guard_is_flagged() {
        let src = "fn f(&self) {\n    let a = self.first.lock().unwrap_or_else(|e| e.into_inner());\n    let b = self.second.lock().unwrap_or_else(|e| e.into_inner());\n    use_both(&a, &b);\n}\n";
        let hits = rules_at(PLAIN, src);
        assert_eq!(hits, vec![("blocking-under-lock".to_string(), 3)]);
    }

    #[test]
    fn condvar_wait_is_not_a_blocking_call() {
        let src = "fn pop(&self) {\n    let Ok(mut s) = self.state.lock() else { return; };\n    loop {\n        s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());\n    }\n}\n";
        assert!(rules_at(PLAIN, src).is_empty());
    }

    #[test]
    fn inverted_lock_order_across_fns_is_flagged_once() {
        let src = "fn a(&self) {\n    let x = self.alpha.lock().unwrap_or_else(|e| e.into_inner());\n    let y = self.beta.lock().unwrap_or_else(|e| e.into_inner());\n    go(&x, &y);\n}\nfn b(&self) {\n    let y = self.beta.lock().unwrap_or_else(|e| e.into_inner());\n    let x = self.alpha.lock().unwrap_or_else(|e| e.into_inner());\n    go(&x, &y);\n}\n";
        let hits = rules_at(PLAIN, src);
        let order: Vec<_> = hits.iter().filter(|(r, _)| r == "lock-order").collect();
        assert_eq!(order.len(), 1, "{hits:?}");
        assert_eq!(*order[0], ("lock-order".to_string(), 8));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "fn a(&self) {\n    let x = self.alpha.lock().unwrap_or_else(|e| e.into_inner());\n    let y = self.beta.lock().unwrap_or_else(|e| e.into_inner());\n    go(&x, &y);\n}\nfn b(&self) {\n    let x = self.alpha.lock().unwrap_or_else(|e| e.into_inner());\n    let y = self.beta.lock().unwrap_or_else(|e| e.into_inner());\n    go(&x, &y);\n}\n";
        let hits = rules_at(PLAIN, src);
        assert!(!hits.iter().any(|(r, _)| r == "lock-order"), "{hits:?}");
        // The nested second acquisitions still trip blocking-under-lock
        // (lines 3 and 8) — that is the point of that rule, not noise.
        assert_eq!(
            hits.iter()
                .filter(|(r, _)| r == "blocking-under-lock")
                .count(),
            2
        );
    }

    #[test]
    fn condvar_wait_outside_loop_is_flagged() {
        let src = "fn once(&self) {\n    let mut s = self.m.lock().unwrap_or_else(|e| e.into_inner());\n    s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());\n    use_it(&s);\n}\n";
        let hits = rules_at(PLAIN, src);
        assert!(
            hits.iter().any(|(r, l)| r == "condvar-no-loop" && *l == 3),
            "{hits:?}"
        );
    }

    #[test]
    fn condvar_wait_timeout_in_while_is_clean() {
        let src = "fn tick(&self) {\n    let mut s = self.m.lock().unwrap_or_else(|e| e.into_inner());\n    while !s.ready {\n        s = self.cv.wait_timeout(s, tick).unwrap_or_else(|e| e.into_inner()).0;\n    }\n}\n";
        assert!(rules_at(PLAIN, src).is_empty());
    }

    #[test]
    fn child_process_wait_is_not_a_condvar_wait() {
        let src = "fn reap(child: &mut Child) { let _ = child.wait(); }\n";
        assert!(rules_at(PLAIN, src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_blocking_under_lock() {
        let src = "fn f(&self) {\n    let g = self.m.lock().unwrap_or_else(|e| e.into_inner());\n    // lint:allow(blocking-under-lock) -- guard protects the sleep schedule itself\n    thread::sleep(self.tick);\n    use_it(&g);\n}\n";
        assert!(rules_at(PLAIN, src).is_empty());
    }
}
