//! A lightweight syntax layer over the token stream: a brace-matched
//! block tree with item boundaries.
//!
//! The token rules of [`crate::rules`] are deliberately flat — they
//! pattern-match small windows of the stream. The concurrency rules of
//! [`crate::rules_concurrency`] need more: "is this `Condvar::wait`
//! inside a loop?", "which function does this lock acquisition belong
//! to?", "where does the enclosing scope end?". This module answers
//! those questions with a single forward pass that matches `{`/`}`
//! pairs into a [`Block`] tree and tags each block with the item that
//! introduced it (`fn`/`impl`/`mod`/loop headers), without attempting
//! to be a real Rust parser.
//!
//! The classifier is intentionally conservative: any brace it cannot
//! attribute to an item or loop header becomes [`BlockKind::Other`]
//! (struct literals, match bodies, closures, plain scopes). That is
//! always safe for the consumers here — an `Other` block still nests
//! correctly, it just carries no semantic label.

use crate::lexer::{Token, TokenKind};

/// What introduced a brace block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A function body (`fn name(..) { .. }`).
    Fn,
    /// An `impl` block.
    Impl,
    /// An inline module (`mod name { .. }`).
    Mod,
    /// A loop body (`loop`/`while`/`while let`/`for` headers). The
    /// condvar rule treats any of these as a valid re-check loop.
    Loop,
    /// Anything else: match bodies, struct literals, closures, bare
    /// scopes, `if`/`else` arms.
    Other,
}

/// One `{ .. }` region of the token stream.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (last token of the file when
    /// the block is unterminated — the lexer never fails, neither do we).
    pub close: usize,
    /// Index into [`Syntax::blocks`] of the enclosing block, if any.
    pub parent: Option<usize>,
    pub kind: BlockKind,
    /// Item name for `Fn`/`Mod` blocks (`None` elsewhere).
    pub name: Option<String>,
}

/// A function item with a body in this file.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Index into [`Syntax::blocks`] of the body block.
    pub body: usize,
}

/// The block tree and function inventory of one file.
#[derive(Debug, Default)]
pub struct Syntax {
    pub blocks: Vec<Block>,
    pub fns: Vec<FnItem>,
}

/// The candidate label for the next `{` encountered, set by item and
/// loop-header keywords and cleared by statement boundaries.
struct Pending {
    kind: BlockKind,
    name: Option<String>,
}

impl Syntax {
    /// One forward pass: match braces, classify blocks, record `fn`s.
    pub fn build(tokens: &[Token<'_>]) -> Syntax {
        let mut syn = Syntax::default();
        let mut stack: Vec<usize> = Vec::new();
        let mut pending: Option<Pending> = None;
        // `fn` items pending a body: (name, kw index) — becomes a
        // `FnItem` when its body `{` opens, dropped on `;` (trait
        // method declarations have no body to index).
        let mut pending_fn: Option<(String, usize)> = None;

        let mut i = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            match t.kind {
                TokenKind::Ident => {
                    // Item/loop headers claim the next `{` only when no
                    // earlier header is already waiting for one: inside
                    // `fn f() -> impl Iterator<..> {`, the `impl` in
                    // return position must not steal the body from `fn`.
                    if pending.is_none() {
                        match t.text {
                            "fn" => {
                                // A name is what separates an item from a
                                // function-pointer type (`fn(u32) -> u32`).
                                if let Some(name) = tokens
                                    .get(i + 1)
                                    .filter(|n| n.kind == TokenKind::Ident)
                                    .map(|n| n.text.to_string())
                                {
                                    pending = Some(Pending {
                                        kind: BlockKind::Fn,
                                        name: Some(name.clone()),
                                    });
                                    pending_fn = Some((name, i));
                                }
                            }
                            "impl" => {
                                pending = Some(Pending {
                                    kind: BlockKind::Impl,
                                    name: None,
                                });
                            }
                            "mod" => {
                                if let Some(name) = tokens
                                    .get(i + 1)
                                    .filter(|n| n.kind == TokenKind::Ident)
                                    .map(|n| n.text.to_string())
                                {
                                    pending = Some(Pending {
                                        kind: BlockKind::Mod,
                                        name: Some(name),
                                    });
                                }
                            }
                            "loop" | "while" | "for" => {
                                pending = Some(Pending {
                                    kind: BlockKind::Loop,
                                    name: None,
                                });
                            }
                            _ => {}
                        }
                    }
                }
                TokenKind::Punct => match t.text.as_bytes().first() {
                    Some(b'{') => {
                        let p = pending.take();
                        let (kind, name) = match p {
                            Some(p) => (p.kind, p.name),
                            None => (BlockKind::Other, None),
                        };
                        let id = syn.blocks.len();
                        syn.blocks.push(Block {
                            open: i,
                            close: tokens.len().saturating_sub(1),
                            parent: stack.last().copied(),
                            kind,
                            name: name.clone(),
                        });
                        if kind == BlockKind::Fn {
                            if let Some((fname, kw)) = pending_fn.take() {
                                syn.fns.push(FnItem {
                                    name: fname,
                                    kw,
                                    body: id,
                                });
                            }
                        }
                        stack.push(id);
                    }
                    Some(b'}') => {
                        if let Some(id) = stack.pop() {
                            if let Some(b) = syn.blocks.get_mut(id) {
                                b.close = i;
                            }
                        }
                        pending = None;
                    }
                    Some(b';') => {
                        pending = None;
                        pending_fn = None;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        syn
    }

    /// Index of the innermost block whose *interior* contains `tok`
    /// (open and close braces themselves count as inside).
    pub fn innermost_block(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (id, b) in self.blocks.iter().enumerate() {
            if b.open <= tok && tok <= b.close {
                // Blocks are pushed outermost-first, so a later match
                // is always at least as deeply nested.
                best = Some(id);
            }
        }
        best
    }

    /// The function whose body block contains `tok`, if any (innermost
    /// wins for nested `fn` items).
    pub fn enclosing_fn(&self, tok: usize) -> Option<&FnItem> {
        let mut best: Option<&FnItem> = None;
        for f in &self.fns {
            let b = &self.blocks[f.body];
            if b.open <= tok && tok <= b.close {
                best = Some(f);
            }
        }
        best
    }

    /// Is `tok` inside a loop body (`loop`/`while`/`for`) without
    /// leaving its enclosing function? This is the condvar rule's
    /// predicate-loop test: the walk stops at the first `Fn` block so a
    /// loop *outside* a closure-free helper cannot vouch for a wait
    /// inside it.
    pub fn in_loop_within_fn(&self, tok: usize) -> bool {
        let mut cur = self.innermost_block(tok);
        while let Some(id) = cur {
            let b = &self.blocks[id];
            match b.kind {
                BlockKind::Loop => return true,
                BlockKind::Fn => return false,
                _ => cur = b.parent,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(src: &str) -> (Vec<Token<'_>>, Syntax) {
        let lx = lex(src);
        let syn = Syntax::build(&lx.tokens);
        (lx.tokens, syn)
    }

    fn tok_idx(tokens: &[Token<'_>], text: &str) -> usize {
        tokens
            .iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
    }

    #[test]
    fn fn_impl_mod_blocks_are_classified() {
        let src = "mod m { impl Foo { fn bar(&self) { baz(); } } }";
        let (tokens, syn) = build(src);
        let kinds: Vec<BlockKind> = syn.blocks.iter().map(|b| b.kind).collect();
        assert_eq!(kinds, vec![BlockKind::Mod, BlockKind::Impl, BlockKind::Fn]);
        assert_eq!(syn.fns.len(), 1);
        assert_eq!(syn.fns[0].name, "bar");
        let baz = tok_idx(&tokens, "baz");
        assert_eq!(syn.enclosing_fn(baz).map(|f| f.name.as_str()), Some("bar"));
    }

    #[test]
    fn impl_in_return_position_does_not_steal_the_fn_body() {
        let src = "fn make() -> impl Iterator<Item = u8> { src() }";
        let (tokens, syn) = build(src);
        assert_eq!(syn.blocks.len(), 1);
        assert_eq!(syn.blocks[0].kind, BlockKind::Fn);
        let call = tok_idx(&tokens, "src");
        assert_eq!(
            syn.enclosing_fn(call).map(|f| f.name.as_str()),
            Some("make")
        );
    }

    #[test]
    fn impl_trait_in_arg_position_does_not_steal_either() {
        let src = "fn apply(f: impl Fn() -> u8) -> u8 { f() }";
        let (_, syn) = build(src);
        assert_eq!(syn.blocks.len(), 1);
        assert_eq!(syn.blocks[0].kind, BlockKind::Fn);
    }

    #[test]
    fn loop_kinds_and_in_loop_predicate() {
        let src = "fn f() { loop { inner(); } outer(); while x { w(); } for i in 0..9 { fo(); } }";
        let (tokens, syn) = build(src);
        assert!(syn.in_loop_within_fn(tok_idx(&tokens, "inner")));
        assert!(!syn.in_loop_within_fn(tok_idx(&tokens, "outer")));
        assert!(syn.in_loop_within_fn(tok_idx(&tokens, "w")));
        assert!(syn.in_loop_within_fn(tok_idx(&tokens, "fo")));
    }

    #[test]
    fn while_let_headers_count_as_loops() {
        let src = "fn f(q: Q) { while let Some(x) = q.pop() { use_it(x); } }";
        let (tokens, syn) = build(src);
        assert!(syn.in_loop_within_fn(tok_idx(&tokens, "use_it")));
    }

    #[test]
    fn loop_outside_fn_does_not_vouch_for_wait_inside_nested_fn() {
        // A loop around a nested fn's *definition* says nothing about
        // control flow inside its body.
        let src = "fn outer() { loop { fn inner() { wait_here(); } inner(); } }";
        let (tokens, syn) = build(src);
        assert!(!syn.in_loop_within_fn(tok_idx(&tokens, "wait_here")));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) { cb(1); }";
        let (_, syn) = build(src);
        assert_eq!(syn.fns.len(), 1);
        assert_eq!(syn.fns[0].name, "real");
    }

    #[test]
    fn unterminated_block_closes_at_eof() {
        let src = "fn f() { let x = 1;";
        let (tokens, syn) = build(src);
        assert_eq!(syn.blocks.len(), 1);
        assert_eq!(syn.blocks[0].close, tokens.len() - 1);
    }

    #[test]
    fn trait_method_declarations_without_bodies_are_skipped() {
        let src = "trait T { fn decl(&self); fn with_body(&self) { go(); } }";
        let (tokens, syn) = build(src);
        assert_eq!(syn.fns.len(), 1);
        assert_eq!(syn.fns[0].name, "with_body");
        let go = tok_idx(&tokens, "go");
        assert_eq!(
            syn.enclosing_fn(go).map(|f| f.name.as_str()),
            Some("with_body")
        );
    }

    #[test]
    fn nested_fns_resolve_to_the_innermost_body() {
        let src = "fn outer() { fn inner() { here(); } there(); }";
        let (tokens, syn) = build(src);
        let here = tok_idx(&tokens, "here");
        let there = tok_idx(&tokens, "there");
        assert_eq!(
            syn.enclosing_fn(here).map(|f| f.name.as_str()),
            Some("inner")
        );
        assert_eq!(
            syn.enclosing_fn(there).map(|f| f.name.as_str()),
            Some("outer")
        );
    }
}
