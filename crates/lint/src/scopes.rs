//! Scope-tracked binding analysis for mutex guards.
//!
//! Finds every `<receiver>.lock()` acquisition in a file, works out
//! which binding (if any) the guard landed in, and computes the token
//! range over which the guard is *live*: from the call site to the end
//! of its scope, truncated at an explicit `drop(<name>)`. The
//! concurrency rules in [`crate::rules_concurrency`] are all questions
//! about these live ranges.
//!
//! Binding classification is a small backwards scan over the statement
//! holding the call, not a parse. The forms that appear in this
//! workspace — and that the classifier must get right — are:
//!
//! - `let g = m.lock()…;` → live to the end of the enclosing block
//! - `let Ok(mut g) = m.lock() else { … };` → same (the else block
//!   diverges, so treating the guard as live across it is harmless)
//! - `if let Ok(g) = m.lock() { … }` → live to the end of the `if` arm
//! - `while let Ok(g) = m.lock() { … }` → live to the end of the body
//! - `match m.lock() { … }` → live to the end of the match body
//! - anything else (`m.lock().map(…)`, `m.lock()?.field`) → a
//!   statement temporary, live to the next `;` at statement depth
//!
//! Mutex *identity* is the dotted receiver path read backwards from
//! the call (`self.state`, `ctx.ingest_lock`). Two `lock()` calls on
//! the same textual path are the same mutex; different paths are
//! different mutexes. That is approximate on purpose — it is exactly
//! the granularity the lock-order rule needs within one file.

use crate::lexer::{Token, TokenKind};
use crate::syntax::Syntax;

/// One `.lock()` acquisition and the range its guard stays live.
#[derive(Debug, Clone)]
pub struct GuardSite {
    /// Binding name, when the guard landed in a named pattern.
    pub name: Option<String>,
    /// Dotted receiver path identifying the mutex (`self.state`).
    pub mutex: String,
    /// Token index of the `lock` identifier.
    pub lock_tok: usize,
    /// Last token index (inclusive) at which the guard is live.
    pub live_to: usize,
    /// Name of the enclosing function.
    pub fn_name: String,
}

fn is_p(tokens: &[Token<'_>], i: usize, p: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(p))
}

/// Collect the dotted receiver path ending just before the `.` at
/// `dot`: idents and `self` joined by `.`/`::` (the lexer emits `::`
/// as two `:` tokens), read backwards. Separators normalize to `.`.
fn receiver_path(tokens: &[Token<'_>], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot;
    // Alternate ident / separator, starting with the ident before `dot`.
    loop {
        if j == 0 {
            break;
        }
        let t = &tokens[j - 1];
        if t.kind == TokenKind::Ident && t.text != "await" {
            parts.push(t.text);
            j -= 1;
        } else {
            break;
        }
        if j == 0 {
            break;
        }
        if is_p(tokens, j - 1, '.') {
            j -= 1;
        } else if j >= 2 && is_p(tokens, j - 1, ':') && is_p(tokens, j - 2, ':') {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(".")
}

/// Token index where the statement containing `at` begins, scanning
/// backwards to the nearest `;` or block brace at statement depth
/// (balanced groups from earlier expression text are skipped whole).
fn statement_start(tokens: &[Token<'_>], at: usize, block_open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = at;
    while j > block_open + 1 {
        let t = &tokens[j - 1];
        if t.kind == TokenKind::Punct {
            match t.text {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                ";" => {
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j -= 1;
    }
    block_open + 1
}

/// The statement's binding shape, scanned between its start and the call.
enum Binding {
    /// `let <pat> = …` — guard scoped to the enclosing block.
    Let(Option<String>),
    /// `if let` / `while let` — guard scoped to the following block.
    CondLet(Option<String>),
    /// `match …` scrutinee — guard scoped to the match body block.
    Match,
    /// No binding: a statement temporary.
    Temp,
}

fn classify_binding(tokens: &[Token<'_>], start: usize, lock_tok: usize) -> Binding {
    let mut has_let: Option<usize> = None;
    let mut has_match = false;
    let mut cond = false;
    let mut depth = 0usize;
    for (off, t) in tokens[start..lock_tok].iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && depth == 0 {
            match t.text {
                "let" => has_let = Some(start + off),
                "if" | "while" => cond = true,
                "match" => has_match = true,
                _ => {}
            }
        }
    }
    if let Some(l) = has_let {
        let name = pattern_name(tokens, l + 1);
        if cond {
            Binding::CondLet(name)
        } else {
            Binding::Let(name)
        }
    } else if has_match {
        Binding::Match
    } else {
        Binding::Temp
    }
}

/// First plain identifier bound by the pattern after `let`: skips
/// constructor names (`Ok`/`Some`/`Err`), parens, `mut`, `ref`, `_`.
fn pattern_name(tokens: &[Token<'_>], mut j: usize) -> Option<String> {
    let mut hops = 0;
    while hops < 8 {
        hops += 1;
        let t = tokens.get(j)?;
        match t.kind {
            TokenKind::Ident => match t.text {
                "Ok" | "Some" | "Err" | "mut" | "ref" | "_" => j += 1,
                name => return Some(name.to_string()),
            },
            TokenKind::Punct if t.text == "(" => j += 1,
            _ => return None,
        }
    }
    None
}

/// Token index of the `{` opening the first block after `after`
/// (used for `if let`/`while let`/`match` scope ends). The header
/// between the binding and its block cannot contain a bare `{` in
/// valid Rust, so the first brace is the one we want.
fn next_block_open(tokens: &[Token<'_>], after: usize) -> Option<usize> {
    (after..tokens.len()).find(|&k| is_p(tokens, k, '{'))
}

/// Next `;` at statement depth after `after`, for temporaries. Bounded
/// by `limit` (the enclosing block close).
fn next_semi(tokens: &[Token<'_>], after: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut k = after;
    while k <= limit && k < tokens.len() {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                ";" => {
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    limit
}

/// Does the expression chain after the `.lock()` call's closing paren
/// still yield the guard? `;`, `{`, and `else` end the chain with the
/// guard intact; `?` and poison-recovery adapters (`unwrap`, `expect`,
/// `unwrap_or_else(PoisonError::into_inner)`, …) pass it through; any
/// other method (`.map(…)`, `.is_ok()`) consumes it, so a `let` on the
/// statement binds a derived value, not the guard.
fn guard_retained(tokens: &[Token<'_>], close_paren: usize) -> bool {
    const PASS_THROUGH: &[&str] = &[
        "unwrap",
        "expect",
        "unwrap_or",
        "unwrap_or_else",
        "unwrap_or_default",
        "into_inner",
    ];
    let mut j = close_paren;
    loop {
        let Some(next) = tokens.get(j + 1) else {
            return true;
        };
        if next.is_punct(';') || next.is_punct('{') || next.is_ident("else") {
            return true;
        }
        if next.is_punct('?') {
            j += 1;
            continue;
        }
        if next.is_punct('.') {
            let keeps = tokens
                .get(j + 2)
                .is_some_and(|m| m.kind == TokenKind::Ident && PASS_THROUGH.contains(&m.text))
                && is_p(tokens, j + 3, '(');
            if keeps {
                if let Some(end) = matching_paren(tokens, j + 3) {
                    j = end;
                    continue;
                }
            }
            return false;
        }
        return false;
    }
}

/// Index of the `)` matching the `(` at `open`, if any.
fn matching_paren(tokens: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Find `drop ( <name> )` between `from` and `to`; the guard dies at
/// the first one.
fn drop_site(tokens: &[Token<'_>], from: usize, to: usize, name: &str) -> Option<usize> {
    (from..=to.min(tokens.len().saturating_sub(1)).saturating_sub(3)).find(|&k| {
        tokens[k].is_ident("drop")
            && is_p(tokens, k + 1, '(')
            && tokens[k + 2].is_ident(name)
            && is_p(tokens, k + 3, ')')
    })
}

/// Scan a token stream for `.lock()` acquisitions and compute each
/// guard's live range. Only calls inside a function body are tracked.
pub fn collect_guards(tokens: &[Token<'_>], syn: &Syntax) -> Vec<GuardSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("lock") {
            continue;
        }
        // Shape: `<recv> . lock ( )` — empty parens exclude both
        // declarations (`fn lock(&self)`) and UFCS forms.
        if i == 0
            || !is_p(tokens, i - 1, '.')
            || !is_p(tokens, i + 1, '(')
            || !is_p(tokens, i + 2, ')')
        {
            continue;
        }
        let Some(f) = syn.enclosing_fn(i) else {
            continue;
        };
        let body = &syn.blocks[f.body];
        let mutex = receiver_path(tokens, i - 1);
        if mutex.is_empty() {
            // Chained receiver (`make().lock()`): no stable identity.
            continue;
        }
        let Some(block_id) = syn.innermost_block(i) else {
            continue;
        };
        let block = &syn.blocks[block_id];
        let start = statement_start(tokens, i, block.open);
        let (name, live_to) = match classify_binding(tokens, start, i) {
            // A `let` holds the guard only while the chain after
            // `.lock()` passes it through; `let n = m.lock().map(…)…;`
            // binds a derived value and the guard dies at the `;`.
            Binding::Let(name) if guard_retained(tokens, i + 2) => (name, block.close),
            Binding::Let(_) => (None, next_semi(tokens, i + 3, body.close)),
            Binding::CondLet(name) => {
                let end = next_block_open(tokens, i + 2)
                    .and_then(|open| syn.blocks.iter().find(|b| b.open == open))
                    .map(|b| b.close)
                    .unwrap_or(block.close);
                (name, end)
            }
            Binding::Match => {
                let end = next_block_open(tokens, i + 2)
                    .and_then(|open| syn.blocks.iter().find(|b| b.open == open))
                    .map(|b| b.close)
                    .unwrap_or(block.close);
                (None, end)
            }
            Binding::Temp => (None, next_semi(tokens, i + 3, body.close)),
        };
        let live_to = match &name {
            Some(n) => drop_site(tokens, i + 3, live_to, n).unwrap_or(live_to),
            None => live_to,
        };
        out.push(GuardSite {
            name,
            mutex,
            lock_tok: i,
            live_to,
            fn_name: f.name.clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn guards(src: &str) -> (Vec<String>, Vec<GuardSite>) {
        let lx = lex(src);
        let syn = Syntax::build(&lx.tokens);
        let g = collect_guards(&lx.tokens, &syn);
        let texts = lx.tokens.iter().map(|t| t.text.to_string()).collect();
        (texts, g)
    }

    #[test]
    fn let_binding_lives_to_block_end() {
        let src = "fn f(&self) { let g = self.state.lock(); use_it(&g); }";
        let (texts, g) = guards(src);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].mutex, "self.state");
        assert_eq!(g[0].name.as_deref(), Some("g"));
        assert_eq!(g[0].fn_name, "f");
        assert_eq!(texts[g[0].live_to], "}");
    }

    #[test]
    fn explicit_drop_truncates_liveness() {
        let src = "fn f(&self) { let g = self.m.lock(); work(&g); drop(g); after(); }";
        let (texts, g) = guards(src);
        assert_eq!(texts[g[0].live_to], "drop");
        let after = texts.iter().position(|t| t == "after").unwrap();
        assert!(g[0].live_to < after);
    }

    #[test]
    fn let_ok_else_pattern_binds_and_scopes_to_block() {
        let src = "fn f(&self) { let Ok(mut s) = self.state.lock() else { return; }; s.push(1); }";
        let (texts, g) = guards(src);
        assert_eq!(g[0].name.as_deref(), Some("s"));
        assert_eq!(texts[g[0].live_to], "}");
        assert_eq!(g[0].live_to, texts.len() - 1);
    }

    #[test]
    fn if_let_scopes_to_the_then_arm() {
        let src = "fn f(&self) { if let Ok(s) = self.m.lock() { touch(&s); } outside(); }";
        let (texts, g) = guards(src);
        let outside = texts.iter().position(|t| t == "outside").unwrap();
        assert!(g[0].live_to < outside);
        assert_eq!(g[0].name.as_deref(), Some("s"));
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src =
            "fn f(&self) -> usize { let n = self.m.lock().map(|s| s.items.len()).unwrap_or(0); n }";
        let (texts, g) = guards(src);
        assert_eq!(g[0].name, None);
        assert_eq!(texts[g[0].live_to], ";");
    }

    #[test]
    fn match_scrutinee_lives_to_match_body_end() {
        let src = "fn f(&self) { match self.m.lock() { Ok(s) => go(&s), Err(_) => {} } tail(); }";
        let (texts, g) = guards(src);
        let tail = texts.iter().position(|t| t == "tail").unwrap();
        assert!(g[0].live_to < tail);
    }

    #[test]
    fn ufcs_and_declarations_are_not_acquisitions() {
        let src =
            "impl M { fn lock(&self) -> Guard { inner() } }\nfn g(m: &M) { let x = M::lock(m); }";
        let (_, g) = guards(src);
        assert!(g.is_empty());
    }

    #[test]
    fn receiver_paths_distinguish_mutexes() {
        let src = "fn f(ctx: &Ctx) { let a = ctx.ingest_lock.lock(); let b = self.inner.lock(); }";
        let (_, g) = guards(src);
        assert_eq!(g[0].mutex, "ctx.ingest_lock");
        assert_eq!(g[1].mutex, "self.inner");
    }

    #[test]
    fn guard_passed_to_wait_stays_live_in_loop() {
        let src = "fn pop(&self) { let Ok(mut s) = self.state.lock() else { return; }; loop { s = self.ready.wait(s).unwrap_or_else(recover); } }";
        let (texts, g) = guards(src);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].live_to, texts.len() - 1);
    }
}
