//! The cross-file `metric-name-drift` pass.
//!
//! The obs registry is stringly keyed: a metric exists because some
//! call site said `obs.incr("engine.builds", 1)`. DESIGN.md §11 keeps
//! the human-readable inventory of those names — and nothing used to
//! tie the two together, so they drifted (PR 7 shipped
//! `kernels.gram_rect_rows` call sites the docs never mentioned).
//! This pass collects every literal metric registration in the
//! workspace, parses the inventory block out of DESIGN.md, and reports
//! drift in both directions:
//!
//! - a call-site literal absent from the inventory;
//! - a non-`(dynamic)` inventory entry no call site registers.
//!
//! Names built at runtime (`format!("{prefix}.calls")`) are invisible
//! to the collector; the inventory documents them with a `(dynamic)`
//! marker, which exempts them from the reverse check.
//!
//! ## Inventory format
//!
//! Between `<!-- metric-inventory:begin -->` and
//! `<!-- metric-inventory:end -->` in DESIGN.md, every backtick-quoted
//! token that looks like a metric name — contains a `.`, uses only
//! `[A-Za-z0-9._<>]` — is an entry, so one bullet can list a family
//! (`` `fit.runs`, `fit.vocab_size` — counters ``) while surrounding
//! prose in backticks (`format!`, `IVF_METRICS`) stays inert.
//! `(dynamic)` anywhere on a line marks every name on it dynamic.
//! Stage-timer entries (`stage.<path>.seconds`) are matched against
//! `span!` site names componentwise, since the registry key is
//! assembled from the nesting of spans at runtime.

use crate::diag::Diagnostic;
use crate::engine::Ctx;
use crate::lexer::TokenKind;

pub const METRIC_NAME_DRIFT: &str = "metric-name-drift";

/// How a name reaches the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Direct registration: `incr`/`set_gauge`/`record`/
    /// `record_duration`/`time` with a literal first argument.
    Call,
    /// A `span!(obs, "name")` segment; the registry key is
    /// `stage.<joined spans>.seconds`.
    Span,
}

/// One literal metric registration found in source.
#[derive(Debug, Clone)]
pub struct MetricSite {
    pub name: String,
    pub kind: SiteKind,
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// `lint:allow(metric-name-drift)` covered this line; the site
    /// still participates in the reverse check but never reports.
    pub suppressed: bool,
}

/// Registry methods whose first argument names the metric.
const REGISTRY_CALLS: &[&str] = &["incr", "set_gauge", "record", "record_duration", "time"];

/// Strip a string literal token down to its contents (`"x"`,
/// `r"x"`, `r#"x"#` → `x`). Metric names never contain escapes.
fn unquote(text: &str) -> Option<&str> {
    let open = text.find('"')?;
    let inner = &text[open + 1..];
    let close = inner.rfind('"')?;
    Some(&inner[..close])
}

/// Collect every literal metric registration in one file's tokens.
/// Test code (test files, `#[cfg(test)]` ranges) is skipped — test
/// metrics are scratch names, not part of the serving inventory.
pub fn collect_sites(ctx: &Ctx<'_>) -> Vec<MetricSite> {
    let tokens = ctx.tokens();
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || ctx.is_test(i) {
            continue;
        }
        // `<recv>.incr("name", …)` and friends.
        if REGISTRY_CALLS.contains(&t.text)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(lit) = tokens.get(i + 2).filter(|l| l.kind == TokenKind::Str) {
                if let Some(name) = unquote(lit.text) {
                    out.push(MetricSite {
                        name: name.to_string(),
                        kind: SiteKind::Call,
                        path: ctx.path.to_string(),
                        line: lit.line,
                        col: lit.col,
                        suppressed: ctx.is_suppressed(METRIC_NAME_DRIFT, lit.line),
                    });
                }
            }
        }
        // `span!(<registry expr>, "name")` — find the comma separating
        // the two macro arguments, then take a literal after it.
        if t.is_ident("span")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let mut depth = 1usize;
            let mut j = i + 3;
            while let Some(u) = tokens.get(j) {
                if u.is_punct('(') {
                    depth += 1;
                } else if u.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.is_punct(',') && depth == 1 {
                    if let Some(lit) = tokens.get(j + 1).filter(|l| l.kind == TokenKind::Str) {
                        if let Some(name) = unquote(lit.text) {
                            out.push(MetricSite {
                                name: name.to_string(),
                                kind: SiteKind::Span,
                                path: ctx.path.to_string(),
                                line: lit.line,
                                col: lit.col,
                                suppressed: ctx.is_suppressed(METRIC_NAME_DRIFT, lit.line),
                            });
                        }
                    }
                    break;
                }
                j += 1;
            }
        }
    }
    out
}

/// One line of the DESIGN.md inventory block.
#[derive(Debug, Clone)]
pub struct InventoryEntry {
    pub name: String,
    /// 1-based line in the design document.
    pub line: u32,
    pub dynamic: bool,
}

/// Is a backticked token from the inventory block a metric name?
/// Dotted, and limited to the characters metric names (and the
/// `<L>`-style dynamic placeholders) actually use — which keeps code
/// identifiers, paths and macros mentioned in prose out of the list.
fn looks_like_metric(name: &str) -> bool {
    name.contains('.')
        && !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '<' | '>'))
}

const INVENTORY_BEGIN: &str = "<!-- metric-inventory:begin -->";
const INVENTORY_END: &str = "<!-- metric-inventory:end -->";

/// Parse the inventory block out of a design document. Returns `None`
/// when the document has no block at all (then the pass is a no-op —
/// scratch checkouts without DESIGN.md must not fail the lint).
pub fn parse_inventory(design_src: &str) -> Option<Vec<InventoryEntry>> {
    let mut inside = false;
    let mut seen = false;
    let mut entries = Vec::new();
    for (idx, line) in design_src.lines().enumerate() {
        let has_begin = line.contains(INVENTORY_BEGIN);
        let has_end = line.contains(INVENTORY_END);
        if has_begin && has_end {
            // Prose *mentioning* both markers on one line (e.g. the
            // §13 description of this very format) — not a boundary.
            continue;
        }
        if has_begin {
            inside = true;
            seen = true;
            continue;
        }
        if has_end {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let dynamic = line.contains("(dynamic)");
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            rest = &rest[open + 1..];
            let Some(close) = rest.find('`') else { break };
            let name = &rest[..close];
            rest = &rest[close + 1..];
            if looks_like_metric(name) {
                entries.push(InventoryEntry {
                    name: name.to_string(),
                    // enumerate() over a document far below u32::MAX lines
                    line: (idx + 1) as u32,
                    dynamic,
                });
            }
        }
    }
    seen.then_some(entries)
}

/// A `stage.….seconds` inventory entry's middle components, if it is one.
fn stage_components(name: &str) -> Option<Vec<&str>> {
    let middle = name.strip_prefix("stage.")?.strip_suffix(".seconds")?;
    if middle.is_empty() {
        return None;
    }
    Some(middle.split('.').collect())
}

/// Does a call-site `name` match the inventory?
fn call_matches(name: &str, entries: &[InventoryEntry]) -> bool {
    entries.iter().any(|e| e.name == name)
}

/// Does a `span!` segment `name` appear in some stage entry?
fn span_matches(name: &str, entries: &[InventoryEntry]) -> bool {
    entries
        .iter()
        .filter_map(|e| stage_components(&e.name))
        .any(|comps| comps.contains(&name))
}

/// Run both directions of the drift check. `design_path` is only used
/// to anchor reverse-direction diagnostics.
pub fn check_drift(
    sites: &[MetricSite],
    design_path: &str,
    design_src: &str,
    out: &mut Vec<Diagnostic>,
) {
    let Some(entries) = parse_inventory(design_src) else {
        return;
    };
    // Forward: every literal site must be documented.
    for s in sites {
        if s.suppressed {
            continue;
        }
        let (ok, hint) = match s.kind {
            SiteKind::Call => (call_matches(&s.name, &entries), "add it to the inventory"),
            SiteKind::Span => (
                span_matches(&s.name, &entries),
                "add its `stage.….seconds` key to the inventory",
            ),
        };
        if !ok {
            out.push(Diagnostic {
                path: s.path.clone(),
                line: s.line,
                col: s.col,
                rule: METRIC_NAME_DRIFT,
                message: format!(
                    "metric `{}` is registered here but missing from the DESIGN.md §11 inventory; {hint} or rename the call site",
                    s.name
                ),
            });
        }
    }
    // Reverse: every documented non-dynamic entry must have a site.
    for e in &entries {
        if e.dynamic {
            continue;
        }
        let ok = match stage_components(&e.name) {
            Some(comps) => comps.iter().all(|c| {
                sites
                    .iter()
                    .any(|s| s.kind == SiteKind::Span && s.name == *c)
            }),
            None => sites
                .iter()
                .any(|s| s.kind == SiteKind::Call && s.name == e.name),
        };
        if !ok {
            out.push(Diagnostic {
                path: design_path.to_string(),
                line: e.line,
                col: 1,
                rule: METRIC_NAME_DRIFT,
                message: format!(
                    "inventory entry `{}` has no literal registration site in the linted code; remove the entry or mark it `(dynamic)` if the name is built at runtime",
                    e.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    const DESIGN: &str = "\
# design\n\
<!-- metric-inventory:begin -->\n\
- `serve.requests` — counter\n\
- `engine.query.seconds` — histogram\n\
- `kernels.gram.calls` (dynamic) — per-prefix counter\n\
- `stage.fit.encode.seconds` — stage timer\n\
- `orphan.metric` — documented but never registered\n\
<!-- metric-inventory:end -->\n";

    fn drift(src: &str) -> Vec<Diagnostic> {
        let a = analyze_source("crates/core/src/fixture.rs", src);
        assert!(a.diags.is_empty(), "per-file rules fired: {:?}", a.diags);
        let mut out = Vec::new();
        check_drift(&a.metric_sites, "DESIGN.md", DESIGN, &mut out);
        out
    }

    #[test]
    fn documented_names_and_spans_are_clean_and_orphan_is_reported() {
        let src = "fn f(obs: &Registry) {\n    obs.incr(\"serve.requests\", 1);\n    obs.record(\"engine.query.seconds\", 0.1);\n    let _fit = span!(obs, \"fit\");\n    let _enc = span!(obs, \"encode\");\n}\n";
        let out = drift(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "DESIGN.md");
        assert_eq!(out[0].line, 7);
        assert!(out[0].message.contains("orphan.metric"));
    }

    #[test]
    fn unregistered_call_site_literal_is_reported_at_the_literal() {
        let src = "fn f(obs: &Registry) {\n    obs.incr(\"serve.requests\", 1);\n    obs.record(\"engine.query.seconds\", 0.1);\n    let _fit = span!(obs, \"fit\");\n    let _enc = span!(obs, \"encode\");\n    obs.incr(\"serve.surprise\", 1);\n}\n";
        let out = drift(src);
        let fwd: Vec<_> = out.iter().filter(|d| d.path != "DESIGN.md").collect();
        assert_eq!(fwd.len(), 1, "{out:?}");
        assert_eq!((fwd[0].line, fwd[0].col), (6, 14));
        assert!(fwd[0].message.contains("serve.surprise"));
    }

    #[test]
    fn span_segment_not_in_any_stage_entry_is_reported() {
        let src = "fn f(obs: &Registry) {\n    obs.incr(\"serve.requests\", 1);\n    obs.record(\"engine.query.seconds\", 0.1);\n    let _fit = span!(obs, \"fit\");\n    let _enc = span!(obs, \"encode\");\n    let _x = span!(obs, \"mystery\");\n}\n";
        let out = drift(src);
        let fwd: Vec<_> = out.iter().filter(|d| d.path != "DESIGN.md").collect();
        assert_eq!(fwd.len(), 1, "{out:?}");
        assert!(fwd[0].message.contains("mystery"));
    }

    #[test]
    fn dynamic_entries_are_exempt_from_the_reverse_check() {
        // `kernels.gram.calls` never appears as a literal below, yet
        // only the deliberate orphan is reported.
        let src = "fn f(obs: &Registry) {\n    obs.incr(\"serve.requests\", 1);\n    obs.record(\"engine.query.seconds\", 0.1);\n    let _fit = span!(obs, \"fit\");\n    let _enc = span!(obs, \"encode\");\n}\n";
        let out = drift(src);
        assert!(
            !out.iter().any(|d| d.message.contains("kernels.gram")),
            "{out:?}"
        );
    }

    #[test]
    fn test_code_metric_names_are_not_collected() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(obs: &Registry) { obs.incr(\"scratch.name\", 1); }\n}\n";
        let a = analyze_source("crates/core/src/fixture.rs", src);
        assert!(a.metric_sites.is_empty(), "{:?}", a.metric_sites);
    }

    #[test]
    fn missing_inventory_block_disables_the_pass() {
        let a = analyze_source(
            "crates/core/src/fixture.rs",
            "fn f(obs: &Registry) { obs.incr(\"anything.at.all\", 1); }\n",
        );
        let mut out = Vec::new();
        check_drift(
            &a.metric_sites,
            "DESIGN.md",
            "# doc without a block\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn prose_mentioning_both_markers_on_one_line_is_not_a_boundary() {
        // Found by dogfooding: DESIGN.md §13 *describes* the inventory
        // format, markers and all, after the real block has closed. A
        // line carrying both markers must not reopen the block.
        let design = "<!-- metric-inventory:begin -->\n\
- `real.entry` — counter\n\
<!-- metric-inventory:end -->\n\
Prose: between `<!-- metric-inventory:begin -->` / `<!-- metric-inventory:end -->` markers.\n\
- `not.an.entry` — just documentation\n";
        let entries = parse_inventory(design).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["real.entry"]);
    }

    #[test]
    fn one_line_can_list_several_names_and_prose_stays_inert() {
        let design = "<!-- metric-inventory:begin -->\n\
- `fit.runs`, `fit.vocab_size` (dynamic) — built with `format!` via `IVF_METRICS`\n\
<!-- metric-inventory:end -->\n";
        let entries = parse_inventory(design).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["fit.runs", "fit.vocab_size"]);
        assert!(entries.iter().all(|e| e.dynamic));
    }

    #[test]
    fn dynamic_first_argument_is_ignored() {
        let src = "fn f(obs: &Registry, name: &str) { obs.incr(name, 1); obs.incr(&format!(\"{name}.calls\"), 1); }\n";
        let a = analyze_source("crates/core/src/fixture.rs", src);
        assert!(a.metric_sites.is_empty(), "{:?}", a.metric_sites);
    }
}
