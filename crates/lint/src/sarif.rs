//! SARIF 2.1.0 output.
//!
//! Static Analysis Results Interchange Format — the schema GitHub code
//! scanning ingests to turn lint findings into PR annotations. Like
//! [`crate::diag::render_json`], the document is hand-rolled with a
//! fixed key order, pre-sorted diagnostics, and no timestamps or
//! absolute paths, so identical inputs produce byte-identical output
//! (CI artifacts diff cleanly across runs).
//!
//! Only the minimal required subset of the spec is emitted:
//! `tool.driver` with the full rule catalog (so viewers can show rule
//! help without a network fetch), and one `result` per diagnostic with
//! a `physicalLocation` region. `ruleIndex` points into the catalog
//! array per the spec's lookup optimization.

use crate::diag::{json_string, Diagnostic};
use crate::rules;
use std::fmt::Write as _;

const SARIF_VERSION: &str = "2.1.0";
const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// The catalog SARIF reports: every public rule plus the
/// non-suppressible `bad-suppression` meta-rule, in stable order.
fn full_catalog() -> Vec<(&'static str, &'static str)> {
    let mut cat: Vec<(&str, &str)> = rules::CATALOG.to_vec();
    cat.push((
        rules::BAD_SUPPRESSION,
        "malformed lint:allow suppression (missing reason or unknown rule); not itself suppressible",
    ));
    cat
}

/// Render `diags` (already canonically sorted) as a SARIF 2.1.0
/// document. Byte-stable: fixed key order, no volatile fields.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let catalog = full_catalog();
    let mut out = String::with_capacity(2048 + diags.len() * 256);
    out.push_str("{\"$schema\":");
    out.push_str(&json_string(SCHEMA_URI));
    out.push_str(",\"version\":");
    out.push_str(&json_string(SARIF_VERSION));
    out.push_str(",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"soulmate-lint\",\"version\":");
    out.push_str(&json_string(env!("CARGO_PKG_VERSION")));
    out.push_str(",\"rules\":[");
    for (i, (id, summary)) in catalog.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_string(id),
            json_string(summary)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = catalog
            .iter()
            .position(|(id, _)| *id == d.rule)
            .unwrap_or(usize::MAX);
        out.push_str("{\"ruleId\":");
        out.push_str(&json_string(d.rule));
        if rule_index != usize::MAX {
            let _ = write!(out, ",\"ruleIndex\":{rule_index}");
        }
        let _ = write!(
            out,
            ",\"level\":\"error\",\"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_string(&d.message),
            json_string(&d.path),
            d.line,
            d.col
        );
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/core/src/x.rs".into(),
                line: 3,
                col: 17,
                rule: rules::PANIC_IN_SERVING,
                message: "something \"quoted\"".into(),
            },
            Diagnostic {
                path: "crates/serve/src/y.rs".into(),
                line: 9,
                col: 5,
                rule: crate::rules_concurrency::LOCK_UNWRAP,
                message: "m".into(),
            },
        ]
    }

    #[test]
    fn sarif_is_byte_stable_across_runs() {
        assert_eq!(render_sarif(&sample()), render_sarif(&sample()));
    }

    #[test]
    fn sarif_contains_schema_rules_and_locations() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"soulmate-lint\""));
        assert!(s.contains("\"id\":\"lock-order\""));
        assert!(s.contains("\"id\":\"bad-suppression\""));
        assert!(s.contains("\"uri\":\"crates/core/src/x.rs\""));
        assert!(s.contains("\"startLine\":3"));
        assert!(s.contains("\"startColumn\":17"));
        assert!(s.contains("something \\\"quoted\\\""));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn rule_index_points_into_the_catalog() {
        let s = render_sarif(&sample());
        // panic-in-serving is the third catalog entry (index 2).
        let idx = rules::CATALOG
            .iter()
            .position(|(id, _)| *id == rules::PANIC_IN_SERVING)
            .expect("cataloged");
        assert!(s.contains(&format!(
            "{{\"ruleId\":\"panic-in-serving\",\"ruleIndex\":{idx},"
        )));
    }

    #[test]
    fn empty_run_is_valid_and_stable() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\":[]"));
        assert_eq!(s, render_sarif(&[]));
    }
}
