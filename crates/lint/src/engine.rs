//! The rule engine: builds a per-file analysis context from the token
//! stream (test regions, blessed `#[allow]` scopes, `lint:allow`
//! suppressions) and runs every rule in the catalog over it.
//!
//! ## Scoping model
//!
//! Rules distinguish three kinds of code:
//!
//! - **test code** — files under a `tests/` or `benches/` directory, and
//!   token ranges covered by a literal `#[cfg(test)]` attribute (the only
//!   spelling used in this workspace). Panic- and write-hygiene rules do
//!   not apply there;
//! - **serving code** — library code of `crates/core`, `crates/graph`,
//!   and `crates/cli`, where the no-panic guarantee of DESIGN.md §12
//!   holds and [`rules`]' `panic-in-serving` applies;
//! - everything else.
//!
//! ## Suppressions
//!
//! `// lint:allow(rule-id[, rule-id…]) -- <reason>` suppresses the named
//! rules on the comment's own line, or — when the comment stands alone on
//! its line — on the following line. The `-- reason` part is mandatory;
//! a suppression without one (or naming an unknown rule) is itself
//! reported as `bad-suppression`, so silent opt-outs cannot accumulate.

use crate::diag::{sort_canonical, Diagnostic};
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use crate::rules;
use std::collections::HashMap;

/// Which panic sub-checks a `#[allow(clippy::…)]` attribute blesses for
/// the item it covers (mirroring what clippy itself would accept there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bless {
    Index,
    Unwrap,
    Expect,
}

/// Per-file analysis context handed to every rule.
pub struct Ctx<'a> {
    pub path: &'a str,
    pub lx: &'a Lexed<'a>,
    /// Whole file is test code (under `tests/` or `benches/`).
    pub test_file: bool,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Token-index ranges blessed by `#[allow(clippy::…)]` attributes.
    pub blessed: Vec<(usize, usize, Bless)>,
    /// line → rule IDs suppressed on that line via `lint:allow`.
    pub suppressions: HashMap<u32, Vec<String>>,
    /// File is library code of a serving-path crate (core/graph/cli).
    pub serving: bool,
}

impl<'a> Ctx<'a> {
    pub fn tokens(&self) -> &'a [Token<'a>] {
        &self.lx.tokens
    }

    pub fn comments(&self) -> &'a [Comment<'a>] {
        &self.lx.comments
    }

    /// Is the token at index `i` inside test code?
    pub fn is_test(&self, i: usize) -> bool {
        self.test_file || self.test_ranges.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// Is the token at index `i` inside a scope blessed for `b`?
    pub fn is_blessed(&self, i: usize, b: Bless) -> bool {
        self.blessed
            .iter()
            .any(|&(s, e, kind)| kind == b && s <= i && i <= e)
    }

    /// Is `rule` suppressed on `line` by a `lint:allow` comment?
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .get(&line)
            .is_some_and(|v| v.iter().any(|r| r == rule))
    }

    /// Does any comment sit adjacent to `line` (trailing on it, or ending
    /// on the line directly above)? This is the "proof comment" test used
    /// by `unguarded-as-cast`.
    pub fn has_adjacent_comment(&self, line: u32) -> bool {
        self.comments()
            .iter()
            .any(|c| c.line == line || c.end_line + 1 == line)
    }

    /// Emit a diagnostic at `tok` unless suppressed.
    pub fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        tok: &Token<'_>,
        rule: &'static str,
        message: String,
    ) {
        if self.is_suppressed(rule, tok.line) {
            return;
        }
        out.push(Diagnostic {
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    }
}

/// Normalize a path to `/`-separated components for scope decisions.
fn components(path: &str) -> Vec<&str> {
    path.split(['/', '\\'])
        .filter(|c| !c.is_empty() && *c != ".")
        .collect()
}

fn is_test_path(path: &str) -> bool {
    components(path)
        .iter()
        .any(|c| *c == "tests" || *c == "benches")
}

fn is_serving_path(path: &str) -> bool {
    let comps = components(path);
    // The i8 quantization module feeds the serving engine's fast path
    // directly (snapshot decode + candidate scoring), so it opts into
    // the serving rules even though the rest of linalg — fit-time
    // kernels that never see untrusted inputs — does not.
    if comps
        .windows(4)
        .any(|w| w == ["crates", "linalg", "src", "quant.rs"])
    {
        return true;
    }
    comps.windows(3).any(|w| {
        w[0] == "crates"
            && (w[1] == "core"
                || w[1] == "graph"
                || w[1] == "cli"
                || w[1] == "retrieval"
                || w[1] == "serve")
            && w[2] == "src"
    })
}

/// If `tokens[i]` starts an attribute (`#[…]` or `#![…]`), return
/// `(is_inner, inner_start, inner_end_exclusive, after)` where the inner
/// range spans the tokens between the brackets and `after` indexes the
/// token following the closing `]`.
fn parse_attr(tokens: &[Token<'_>], i: usize) -> Option<(bool, usize, usize, usize)> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let (inner, mut j) = match tokens.get(i + 1) {
        Some(t) if t.is_punct('!') => (true, i + 2),
        _ => (false, i + 1),
    };
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    j += 1;
    let start = j;
    let mut depth = 1usize;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((inner, start, j, j + 1));
            }
        }
        j += 1;
    }
    None
}

/// Starting at the first token after an attribute stack, return the
/// inclusive token range of the annotated item: up to the matching `}` of
/// its first top-level brace block, or to the terminating `;` for
/// braceless items (`use`, `type`, `const`).
fn item_extent(tokens: &[Token<'_>], from: usize) -> Option<(usize, usize)> {
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    let mut j = from;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') => depth_paren += 1,
                Some(b')') => depth_paren -= 1,
                Some(b'[') => depth_bracket += 1,
                Some(b']') => depth_bracket -= 1,
                Some(b'{') if depth_paren == 0 && depth_bracket == 0 => {
                    let mut braces = 1i32;
                    let mut k = j + 1;
                    while let Some(u) = tokens.get(k) {
                        if u.is_punct('{') {
                            braces += 1;
                        } else if u.is_punct('}') {
                            braces -= 1;
                            if braces == 0 {
                                return Some((from, k));
                            }
                        }
                        k += 1;
                    }
                    return Some((from, tokens.len().saturating_sub(1)));
                }
                Some(b';') if depth_paren == 0 && depth_bracket == 0 => return Some((from, j)),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Token range `[start, end]` masked as `#[cfg(test)]` code.
type TestRange = (usize, usize);
/// Token range blessed by a `#[allow(clippy::…)]` attribute.
type BlessedRange = (usize, usize, Bless);

/// Scan the token stream for `#[cfg(test)]` and blessing `#[allow(…)]`
/// attributes, recording the token ranges of the items they cover.
fn collect_attr_scopes(tokens: &[Token<'_>]) -> (Vec<TestRange>, Vec<BlessedRange>) {
    let mut test_ranges = Vec::new();
    let mut blessed = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some((inner_attr, s, e, after)) = parse_attr(tokens, i) else {
            i += 1;
            continue;
        };
        let inner = &tokens[s..e];
        let is_cfg_test = inner.len() == 4
            && inner[0].is_ident("cfg")
            && inner[1].is_punct('(')
            && inner[2].is_ident("test")
            && inner[3].is_punct(')');
        let mut blessings = Vec::new();
        if inner.first().is_some_and(|t| t.is_ident("allow")) {
            for t in inner {
                match t.text {
                    "indexing_slicing" => blessings.push(Bless::Index),
                    "unwrap_used" => blessings.push(Bless::Unwrap),
                    "expect_used" => blessings.push(Bless::Expect),
                    _ => {}
                }
            }
        }
        if !is_cfg_test && blessings.is_empty() {
            i = after;
            continue;
        }
        // Inner attributes (`#![allow(…)]`) scope to the rest of the file.
        if inner_attr {
            let end = tokens.len().saturating_sub(1);
            for b in blessings {
                blessed.push((after, end, b));
            }
            // (`#![cfg(test)]` does not occur in this workspace; ignore.)
            i = after;
            continue;
        }
        // Skip any further attributes in the stack to reach the item.
        let mut item_start = after;
        while let Some((_, _, _, next_after)) = parse_attr(tokens, item_start) {
            item_start = next_after;
        }
        if let Some((from, to)) = item_extent(tokens, item_start) {
            if is_cfg_test {
                test_ranges.push((from, to));
            }
            for b in blessings {
                blessed.push((from, to, b));
            }
        }
        i = after;
    }
    (test_ranges, blessed)
}

/// Parse `lint:allow(…) -- reason` suppression comments. Returns the
/// line → rules map and pushes `bad-suppression` diagnostics for
/// malformed or unknown-rule suppressions.
fn collect_suppressions(
    path: &str,
    comments: &[Comment<'_>],
    out: &mut Vec<Diagnostic>,
) -> HashMap<u32, Vec<String>> {
    let mut map: HashMap<u32, Vec<String>> = HashMap::new();
    for c in comments {
        // A suppression must *start* the comment (after the `//` / `/*`
        // marker) — prose that merely mentions the syntax, e.g. inside
        // backticks in a doc comment, is not parsed.
        let stripped = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !stripped.starts_with("lint:allow") {
            continue;
        }
        let rest = &stripped["lint:allow".len()..];
        let bad = |out: &mut Vec<Diagnostic>, why: &str| {
            out.push(Diagnostic {
                path: path.to_string(),
                line: c.line,
                col: c.col,
                rule: rules::BAD_SUPPRESSION,
                message: format!(
                    "{why}; write `lint:allow(<rule-id>) -- <reason>` with a non-empty reason"
                ),
            });
        };
        let Some(open) = rest.find('(') else {
            bad(out, "`lint:allow` without a rule list");
            continue;
        };
        if !rest[..open].trim().is_empty() {
            bad(out, "`lint:allow` without a rule list");
            continue;
        }
        let Some(close) = rest.find(')') else {
            bad(out, "unterminated `lint:allow(` rule list");
            continue;
        };
        let ids: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if ids.is_empty() {
            bad(out, "`lint:allow()` names no rule");
            continue;
        }
        if let Some(unknown) = ids.iter().find(|id| !rules::is_known_rule(id)) {
            bad(out, &format!("`lint:allow` names unknown rule `{unknown}`"));
            continue;
        }
        // Reason is mandatory: `-- <non-empty text>` after the rule list.
        let tail = rest[close + 1..].trim_start();
        let reason_ok = tail.strip_prefix("--").is_some_and(|r| {
            let r = r.trim_end_matches("*/").trim();
            !r.is_empty()
        });
        if !reason_ok {
            bad(out, "`lint:allow` without a `-- <reason>` justification");
            continue;
        }
        // The suppression covers its own line and — for a comment that
        // stands alone on its line — the line that follows it.
        let mut lines = vec![c.line];
        if c.own_line {
            lines.push(c.end_line + 1);
        }
        for line in lines {
            map.entry(line).or_default().extend(ids.iter().cloned());
        }
    }
    map
}

/// One file's per-file results plus the inputs the cross-file phase
/// needs (today: literal metric registrations for `metric-name-drift`).
pub struct FileAnalysis {
    pub diags: Vec<Diagnostic>,
    pub metric_sites: Vec<crate::metrics::MetricSite>,
}

/// Run the per-file phase over one file's source and collect the
/// cross-file inputs. `path` is used both for diagnostics and for
/// scope decisions (test vs. serving code), so callers should pass the
/// path as reached from the lint roots (e.g. `crates/core/src/engine.rs`).
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    let lx = lex(src);
    let mut out = Vec::new();
    let suppressions = collect_suppressions(path, &lx.comments, &mut out);
    let (test_ranges, blessed) = collect_attr_scopes(&lx.tokens);
    let ctx = Ctx {
        path,
        lx: &lx,
        test_file: is_test_path(path),
        test_ranges,
        blessed,
        suppressions,
        serving: is_serving_path(path),
    };
    rules::run_all(&ctx, &mut out);
    let metric_sites = crate::metrics::collect_sites(&ctx);
    sort_canonical(&mut out);
    FileAnalysis {
        diags: out,
        metric_sites,
    }
}

/// Lint one file's source: the per-file rules only. The cross-file
/// `metric-name-drift` phase needs the whole file set plus DESIGN.md
/// and runs in [`crate::lint_paths_with_design`].
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_source(path, src).diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_scoping() {
        assert!(is_test_path("crates/core/tests/fault_injection.rs"));
        assert!(is_test_path("crates/bench/benches/online.rs"));
        assert!(!is_test_path("crates/core/src/engine.rs"));
        assert!(is_serving_path("crates/core/src/engine.rs"));
        assert!(is_serving_path("crates/core/src/ingest.rs"));
        assert!(is_serving_path("./crates/cli/src/main.rs"));
        assert!(is_serving_path("crates/retrieval/src/ivf.rs"));
        assert!(is_serving_path("crates/serve/src/server.rs"));
        assert!(is_serving_path("crates/core/src/snapshot/binary.rs"));
        assert!(is_serving_path("crates/linalg/src/quant.rs"));
        assert!(!is_serving_path("crates/linalg/src/kernels.rs"));
        assert!(!is_serving_path("crates/core/tests/x.rs"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn prod() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let lx = lex(src);
        let (ranges, _) = collect_attr_scopes(&lx.tokens);
        assert_eq!(ranges.len(), 1);
        let unwrap_idx = lx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        let (s, e) = ranges[0];
        assert!(s <= unwrap_idx && unwrap_idx <= e);
        let work_idx = lx
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .expect("work token");
        assert!(!(s <= work_idx && work_idx <= e));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }\n";
        let lx = lex(src);
        let (ranges, _) = collect_attr_scopes(&lx.tokens);
        assert!(ranges.is_empty());
    }

    #[test]
    fn allow_attr_blesses_item_range() {
        let src = "#[allow(clippy::indexing_slicing)]\nfn hot(v: &[f32], i: usize) -> f32 { v[i] }\nfn cold(v: &[f32]) -> f32 { v[0] }\n";
        let lx = lex(src);
        let (_, blessed) = collect_attr_scopes(&lx.tokens);
        assert_eq!(blessed.len(), 1);
        assert_eq!(blessed[0].2, Bless::Index);
        // The blessed range must cover `hot`'s body but not `cold`'s.
        let hot_open = lx
            .tokens
            .iter()
            .position(|t| t.is_ident("hot"))
            .expect("hot");
        let cold_open = lx
            .tokens
            .iter()
            .position(|t| t.is_ident("cold"))
            .expect("cold");
        let (s, e, _) = blessed[0];
        assert!(s <= hot_open && hot_open <= e);
        assert!(!(s <= cold_open && cold_open <= e));
    }

    #[test]
    fn suppression_requires_reason() {
        let diags = lint_source(
            "crates/eval/src/x.rs",
            "// lint:allow(todo-marker)\nfn f() {}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::BAD_SUPPRESSION);
    }

    #[test]
    fn suppression_rejects_unknown_rule() {
        let diags = lint_source(
            "crates/eval/src/x.rs",
            "// lint:allow(imaginary-rule) -- because\nfn f() {}\n",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("imaginary-rule"));
    }

    #[test]
    fn own_line_suppression_covers_next_line() {
        let src = "// lint:allow(no-unsafe) -- demo of the scoping rule\nunsafe { x() }\nunsafe { y() }\n";
        let diags = lint_source("crates/eval/src/x.rs", src);
        // Only the second `unsafe` (line 3) survives.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "let p = unsafe { g() }; // lint:allow(no-unsafe) -- demo for the test\n";
        let diags = lint_source("crates/eval/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_suppression() {
        let src = "//! `lint:allow(rule-id)` must carry a reason.\nfn f() {}\n";
        let diags = lint_source("crates/eval/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
