//! Fixture-driven self-tests: one positive and one negative fixture per
//! rule, lexed and linted through the public [`soulmate_lint::lint_source`]
//! entry point. Fixtures live in `tests/fixtures/`, which the workspace
//! walker deliberately skips — their violations must never fail the real
//! `soulmate-lint` run over the repo.

use soulmate_lint::{lint_source, Diagnostic};

/// Label under which non-serving fixtures are linted (any non-test,
/// non-serving path works; `bench` is representative).
const PLAIN: &str = "crates/bench/src/fixture.rs";
/// Label that puts a fixture on the serving path (core/graph/cli).
const SERVING: &str = "crates/core/src/fixture.rs";

fn rules_and_lines(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn nan_comparator_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/nan_comparator_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![("nan-comparator", 4), ("nan-comparator", 6)],
        "both the one-line and the line-broken chain must be flagged"
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/nan_comparator_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn non_atomic_write_fixtures() {
    let src = include_str!("fixtures/non_atomic_write_bad.rs");
    let bad = lint_source(PLAIN, src);
    assert_eq!(
        rules_and_lines(&bad),
        vec![("non-atomic-write", 5), ("non-atomic-write", 6)]
    );
    // The same source under a tests/ path is accepted: scratch files in
    // tests do not need the rename protocol.
    assert!(lint_source("crates/bench/tests/fixture.rs", src).is_empty());
    let ok = lint_source(PLAIN, include_str!("fixtures/non_atomic_write_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn panic_in_serving_fixtures() {
    let src = include_str!("fixtures/panic_in_serving_bad.rs");
    let bad = lint_source(SERVING, src);
    assert_eq!(
        rules_and_lines(&bad),
        vec![
            ("panic-in-serving", 4),  // .unwrap()
            ("panic-in-serving", 5),  // .expect(..)
            ("panic-in-serving", 7),  // panic!
            ("panic-in-serving", 12), // xs[i]
            ("panic-in-serving", 13), // unreachable!
        ]
    );
    // Identical source off the serving path is none of this rule's business.
    assert!(lint_source(PLAIN, src).is_empty());
    let ok = lint_source(SERVING, include_str!("fixtures/panic_in_serving_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn allow_without_proof_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/allow_without_proof_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![("allow-without-proof", 1), ("allow-without-proof", 3)]
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/allow_without_proof_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn unguarded_as_cast_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/unguarded_as_cast_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![("unguarded-as-cast", 2), ("unguarded-as-cast", 6)]
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/unguarded_as_cast_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn todo_marker_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/todo_marker_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![
            ("todo-marker", 1), // comment marker
            ("todo-marker", 3), // block-comment marker
            ("todo-marker", 4), // unimplemented!
            ("todo-marker", 8), // todo!
        ]
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/todo_marker_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn no_unsafe_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/no_unsafe_bad.rs"));
    assert_eq!(rules_and_lines(&bad), vec![("no-unsafe", 2)]);
    let ok = lint_source(PLAIN, include_str!("fixtures/no_unsafe_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn bad_suppression_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/bad_suppression_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![("bad-suppression", 2), ("bad-suppression", 4)],
        "missing reason and unknown rule id are both malformed"
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/bad_suppression_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn lock_unwrap_fixtures() {
    let src = include_str!("fixtures/lock_unwrap_bad.rs");
    let bad = lint_source(SERVING, src);
    assert_eq!(
        rules_and_lines(&bad),
        vec![("lock-unwrap", 11), ("lock-unwrap", 16)],
        "one diagnostic per acquisition, and no panic-in-serving double-report"
    );
    // Off the serving path the sharper rule does not apply.
    assert!(lint_source(PLAIN, src).is_empty());
    let ok = lint_source(SERVING, include_str!("fixtures/lock_unwrap_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn blocking_under_lock_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/blocking_under_lock_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![
            ("blocking-under-lock", 14), // sleep under the drain guard
            ("blocking-under-lock", 20), // second .lock() under the first
        ]
    );
    // drop(guard) before the blocking call, a statement-temporary guard,
    // and a reasoned suppression are all quiet.
    let ok = lint_source(PLAIN, include_str!("fixtures/blocking_under_lock_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn lock_order_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/lock_order_bad.rs"));
    assert_eq!(
        rules_and_lines(&bad),
        vec![
            ("blocking-under-lock", 14), // stats.lock() under the index guard
            ("blocking-under-lock", 19), // index.lock() under the stats guard
            ("lock-order", 19),          // …and that one inverts rebuild's order
        ]
    );
    let ok = lint_source(PLAIN, include_str!("fixtures/lock_order_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

#[test]
fn condvar_no_loop_fixtures() {
    let bad = lint_source(PLAIN, include_str!("fixtures/condvar_no_loop_bad.rs"));
    assert_eq!(rules_and_lines(&bad), vec![("condvar-no-loop", 13)]);
    let ok = lint_source(PLAIN, include_str!("fixtures/condvar_no_loop_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

const DESIGN_FIXTURE: &str = include_str!("fixtures/metric_inventory.md");

/// Run one fixture's sites against the fixture inventory, the way
/// `lint_paths_with_design` does for the real workspace and DESIGN.md.
fn drift(path: &str, src: &str) -> Vec<Diagnostic> {
    let analysis = soulmate_lint::analyze_source(path, src);
    assert!(
        analysis.diags.is_empty(),
        "per-file rules fired: {:?}",
        analysis.diags
    );
    let mut out = Vec::new();
    soulmate_lint::metrics::check_drift(
        &analysis.metric_sites,
        "metric_inventory.md",
        DESIGN_FIXTURE,
        &mut out,
    );
    soulmate_lint::sort_canonical(&mut out);
    out
}

#[test]
fn metric_name_drift_fixtures() {
    let bad = drift(PLAIN, include_str!("fixtures/metric_name_drift_bad.rs"));
    let got: Vec<(&str, u32, u32)> = bad
        .iter()
        .map(|d| (d.path.as_str(), d.line, d.col))
        .collect();
    assert_eq!(
        got,
        vec![
            (PLAIN, 7, 14),                // forward: `serve.misses` undocumented
            ("metric_inventory.md", 5, 1), // reverse: `serve.latency.seconds` unregistered
            ("metric_inventory.md", 8, 1), // reverse: `orphan.name` unregistered
        ],
        "{bad:?}"
    );
    assert!(bad.iter().all(|d| d.rule == "metric-name-drift"));

    // The ok fixture registers every non-dynamic entry and suppresses
    // its experimental extra with a reason.
    let ok = drift(PLAIN, include_str!("fixtures/metric_name_drift_ok.rs"));
    assert!(ok.is_empty(), "unexpected: {ok:?}");
}

/// Every diagnostic a fixture produces names a rule from the public
/// catalog (or the `bad-suppression` meta-rule), so docs and output can
/// never drift apart.
#[test]
fn fixture_diagnostics_use_cataloged_rule_ids() {
    let all = [
        include_str!("fixtures/nan_comparator_bad.rs"),
        include_str!("fixtures/non_atomic_write_bad.rs"),
        include_str!("fixtures/panic_in_serving_bad.rs"),
        include_str!("fixtures/allow_without_proof_bad.rs"),
        include_str!("fixtures/unguarded_as_cast_bad.rs"),
        include_str!("fixtures/todo_marker_bad.rs"),
        include_str!("fixtures/no_unsafe_bad.rs"),
        include_str!("fixtures/bad_suppression_bad.rs"),
        include_str!("fixtures/lock_unwrap_bad.rs"),
        include_str!("fixtures/blocking_under_lock_bad.rs"),
        include_str!("fixtures/lock_order_bad.rs"),
        include_str!("fixtures/condvar_no_loop_bad.rs"),
    ];
    for src in all {
        for d in lint_source(SERVING, src) {
            assert!(
                soulmate_lint::rules::is_known_rule(d.rule)
                    || d.rule == soulmate_lint::rules::BAD_SUPPRESSION,
                "uncataloged rule id {:?}",
                d.rule
            );
        }
    }
}
