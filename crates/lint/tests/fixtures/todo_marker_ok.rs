// Mentions that embed the marker inside a word (mastodon, XXXL) are not
// markers, and identifiers are not macro invocations.
fn mastodon_xxxl_sizes() -> Vec<&'static str> {
    let todo = vec!["XXXL"];
    todo
}
