#![allow(clippy::needless_range_loop)]

#[allow(dead_code)]
fn helper() {}
