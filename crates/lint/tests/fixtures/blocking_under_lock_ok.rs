// Negative fixture: dropping the guard before the blocking call, a
// statement-temporary guard that dies at its semicolon, and a reasoned
// suppression all silence the rule.
use std::sync::Mutex;
use std::time::Duration;

struct Queue {
    items: Mutex<Vec<u8>>,
    aux: Mutex<u64>,
}

impl Queue {
    fn swap_then_sleep(&self) {
        let mut g = self.items.lock().unwrap_or_else(|p| p.into_inner());
        g.clear();
        drop(g);
        std::thread::sleep(Duration::from_millis(10));
    }

    fn snapshot_len(&self) -> usize {
        let n = self.items.lock().unwrap_or_else(|p| p.into_inner()).len();
        std::thread::sleep(Duration::from_millis(1));
        n
    }

    fn audited(&self) {
        let _g = self.items.lock().unwrap_or_else(|p| p.into_inner());
        // lint:allow(blocking-under-lock) -- startup-only path; no other thread is live yet
        let _h = self.aux.lock().unwrap_or_else(|p| p.into_inner());
    }
}
