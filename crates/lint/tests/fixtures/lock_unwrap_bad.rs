// Positive fixture (linted under a crates/core/src/ path label): a
// poisoned mutex panics the serving thread through .unwrap()/.expect().
use std::sync::Mutex;

struct Engine {
    state: Mutex<u64>,
}

impl Engine {
    fn bump(&self) {
        let mut g = self.state.lock().unwrap();
        *g += 1;
    }

    fn read(&self) -> u64 {
        *self.state.lock().expect("engine state poisoned")
    }
}
