// Positive fixture: a bare Condvar wait outside a predicate loop wakes
// spuriously and proceeds on a condition that may not hold.
use std::sync::{Condvar, Mutex};

struct Gate {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn await_ready(&self) {
        let g = self.ready.lock().unwrap_or_else(|p| p.into_inner());
        let _g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}
