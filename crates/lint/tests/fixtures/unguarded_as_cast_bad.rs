fn ids(xs: &[u64]) -> Vec<u32> {
    xs.iter().map(|&x| x as u32).collect()
}

fn index(i: u32) -> usize {
    i as usize
}
