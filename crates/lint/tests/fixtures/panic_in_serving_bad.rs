// Positive fixture (linted under a crates/core/src/ path label): every
// panicking construct the serving guarantee bans.
fn lookup(xs: &[f32], i: usize) -> f32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("has two");
    if i >= xs.len() {
        panic!("out of range");
    }
    match i {
        0 => *first,
        1 => *second,
        _ if i < xs.len() => xs[i],
        _ => unreachable!(),
    }
}
