// Positive fixture: two functions acquire the same two mutexes in
// opposite orders — the classic AB/BA deadlock shape. (The nested
// second acquisitions also trip blocking-under-lock, by design.)
use std::sync::Mutex;

struct Engine {
    index: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Engine {
    fn rebuild(&self) {
        let _i = self.index.lock().unwrap_or_else(|p| p.into_inner());
        let _s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
    }

    fn report(&self) {
        let _s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let _i = self.index.lock().unwrap_or_else(|p| p.into_inner());
    }
}
