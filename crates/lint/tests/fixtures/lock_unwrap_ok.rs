// Negative fixture (linted under a crates/core/src/ path label):
// poison-tolerant acquisition in serving code, and plain unwrap in
// test code, are both accepted.
use std::sync::Mutex;

struct Engine {
    state: Mutex<u64>,
}

impl Engine {
    fn bump(&self) {
        let mut g = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *g += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let e = Engine {
            state: Mutex::new(0),
        };
        assert_eq!(*e.state.lock().unwrap(), 0);
    }
}
