// Positive fixture: both the single-line form and the line-broken form
// (which the old `grep -A1` CI gate could miss) must be flagged.
fn sort_scores(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("comparable")
    });
}
