fn f(x: u64) -> u32 {
    // lint:allow(unguarded-as-cast)
    let a = x as u32;
    // lint:allow(not-a-rule) -- the rule id is misspelled
    let b = x as u32;
    a + b
}
