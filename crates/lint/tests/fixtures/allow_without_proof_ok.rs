// Index loops mirror the paper's pseudocode; iterator form obscures it.
#![allow(clippy::needless_range_loop)]

#[allow(dead_code)] // kept for the ffi example in DESIGN.md
fn helper() {}
