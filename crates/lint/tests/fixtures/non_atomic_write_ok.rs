// Negative fixture: writing to a temp sibling (the first half of the
// write-then-rename protocol) is the blessed pattern.
fn save(report: &str, path: &std::path::Path) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, report)?;
    std::fs::rename(&tmp, path)
}
