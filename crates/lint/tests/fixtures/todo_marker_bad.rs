// TODO: tighten the bound
fn later() {
    /* FIXME — this allocates per call */
    unimplemented!()
}

fn much_later() -> u64 {
    todo!()
}
