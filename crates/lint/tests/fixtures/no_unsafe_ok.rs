// The word appears only in strings and comments here — `unsafe` as prose,
// not as a token the rule should see.
fn describe() -> &'static str {
    "this workspace contains no unsafe code"
}
