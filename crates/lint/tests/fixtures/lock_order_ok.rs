// Negative fixture: both functions acquire index before stats — one
// global order never inverts. blocking-under-lock is suppressed (with
// reasons) so the fixture isolates the ordering rule.
use std::sync::Mutex;

struct Engine {
    index: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Engine {
    fn rebuild(&self) {
        let _i = self.index.lock().unwrap_or_else(|p| p.into_inner());
        // lint:allow(blocking-under-lock) -- fixture isolates lock-order
        let _s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
    }

    fn report(&self) {
        let _i = self.index.lock().unwrap_or_else(|p| p.into_inner());
        // lint:allow(blocking-under-lock) -- fixture isolates lock-order
        let _s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
    }
}
