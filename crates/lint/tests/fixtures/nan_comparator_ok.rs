// Negative fixture: total_cmp and a handled None are both fine, and a
// `partial_cmp` mentioned inside a string or comment is not a call:
// a.partial_cmp(b).unwrap()
fn sort_scores(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let _doc = "a.partial_cmp(b).unwrap()";
}
