// Negative fixture (linted under a crates/core/src/ path label): fallible
// returns, blessed indexing scopes, and test code are all accepted.
fn lookup(xs: &[f32], i: usize) -> Option<f32> {
    xs.get(i).copied()
}

// Hot path: `i` is produced by the loop bound over `xs.len()`.
#[allow(clippy::indexing_slicing)]
fn sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1.0f32];
        assert_eq!(*xs.first().unwrap(), 1.0);
    }
}
