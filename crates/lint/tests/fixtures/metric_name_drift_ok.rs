// Negative fixture: every literal matches the inventory; dynamic names
// are exempt from the reverse check and the experiment is suppressed
// with a reason.
fn serve(obs: &Registry) {
    obs.incr("serve.hits", 1);
    obs.record_duration("serve.latency.seconds", 0.01);
    obs.incr("orphan.name", 1);
    let _fit = span!(obs, "fit");
    let _enc = span!(obs, "encode");
    // lint:allow(metric-name-drift) -- experimental name; docs follow once it sticks
    obs.incr("serve.experimental", 1);
}
