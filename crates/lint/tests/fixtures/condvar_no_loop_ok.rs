// Negative fixture: the canonical predicate loop re-checks after every
// wake, wait_while re-checks internally, and Child::wait is a different
// API entirely.
use std::process::Child;
use std::sync::{Condvar, Mutex};

struct Gate {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn await_ready(&self) {
        let mut g = self.ready.lock().unwrap_or_else(|p| p.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn await_ready_checked(&self) {
        let g = self.ready.lock().unwrap_or_else(|p| p.into_inner());
        let _g = self
            .cv
            .wait_while(g, |ready| !*ready)
            .unwrap_or_else(|p| p.into_inner());
    }
}

fn reap(child: &mut Child) -> std::io::Result<()> {
    let _status = child.wait()?;
    Ok(())
}
