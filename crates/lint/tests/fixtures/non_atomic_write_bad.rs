// Positive fixture: both spellings of a direct write to a final path.
use std::fs::File;

fn save(report: &str) -> std::io::Result<()> {
    std::fs::write("results.md", report)?;
    let _f = File::create("results.bin")?;
    Ok(())
}
