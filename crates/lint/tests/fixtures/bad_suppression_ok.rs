fn f(x: u64) -> u32 {
    // lint:allow(unguarded-as-cast) -- x is a dense id far below u32::MAX
    x as u32
}
