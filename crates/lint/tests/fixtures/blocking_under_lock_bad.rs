// Positive fixture: calls that can block for a long time while a mutex
// guard is live starve every other thread contending for that lock.
use std::sync::Mutex;
use std::time::Duration;

struct Queue {
    items: Mutex<Vec<u8>>,
    aux: Mutex<u64>,
}

impl Queue {
    fn drain(&self) {
        let mut g = self.items.lock().unwrap_or_else(|p| p.into_inner());
        std::thread::sleep(Duration::from_millis(10));
        g.clear();
    }

    fn nested(&self) {
        let _g = self.items.lock().unwrap_or_else(|p| p.into_inner());
        let _h = self.aux.lock().unwrap_or_else(|p| p.into_inner());
    }
}
