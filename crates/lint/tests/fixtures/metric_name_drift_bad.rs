// Positive fixture: a registered literal the inventory does not list
// (forward drift). Linted on its own, the inventory's `orphan.name`
// and `serve.latency.seconds` entries also have no sites here, which
// exercises the reverse direction.
fn serve(obs: &Registry) {
    obs.incr("serve.hits", 1);
    obs.incr("serve.misses", 1);
    let _fit = span!(obs, "fit");
    let _enc = span!(obs, "encode");
}
