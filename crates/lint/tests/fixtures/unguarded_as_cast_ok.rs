fn ids(xs: &[u64]) -> Vec<u32> {
    // ids are dense indices < xs.len() ≪ u32::MAX
    xs.iter().map(|&x| x as u32).collect()
}

fn index(i: u32) -> usize {
    i as usize // u32→usize is widening on supported targets
}

fn widen(x: u32) -> (u64, f64) {
    (x as u64, x as f64)
}
