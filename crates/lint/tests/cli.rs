//! End-to-end tests of the `soulmate-lint` binary: exit codes, the
//! `file:line:col: rule-id:` diagnostic format, and byte-stable `--json`
//! output.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_soulmate-lint")
}

/// Fresh scratch directory for one test. Deliberately avoids `tests` or
/// `benches` as a component so path scoping sees non-test files.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soulmate-lint-cli-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

fn seed(dir: &Path, rel: &str, src: &str) {
    let path = dir.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, src).unwrap();
}

#[test]
fn clean_tree_exits_zero() {
    let dir = scratch("clean");
    seed(
        &dir,
        "crates/demo/src/lib.rs",
        "pub fn ok() -> u32 {\n    7\n}\n",
    );
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_violation_exits_nonzero_with_span() {
    let dir = scratch("seeded");
    seed(
        &dir,
        "crates/core/src/bad.rs",
        "pub fn f(xs: &[f32]) -> f32 {\n    *xs.first().unwrap()\n}\n",
    );
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // file:line:col: rule-id: — the unwrap ident starts at line 2, col 17.
    assert!(
        stdout.contains("crates/core/src/bad.rs:2:17: panic-in-serving:"),
        "got: {stdout}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_output_is_sorted_and_byte_stable() {
    let dir = scratch("json");
    // Two files seeded in reverse-alphabetical order; each with two
    // violations in reverse line order of discovery.
    seed(
        &dir,
        "crates/demo/src/zeta.rs",
        "fn f(x: u64) -> u32 {\n    x as u32\n}\n// TODO: later\n",
    );
    seed(
        &dir,
        "crates/demo/src/alpha.rs",
        "fn g(x: u64) -> u8 {\n    x as u8\n}\n",
    );
    let first = run(&["--json", dir.to_str().unwrap()]);
    let second = run(&["--json", dir.to_str().unwrap()]);
    assert_eq!(first.status.code(), Some(1));
    assert_eq!(
        first.stdout, second.stdout,
        "--json must be byte-stable across runs"
    );

    let text = String::from_utf8(first.stdout).unwrap();
    assert!(
        text.starts_with("{\"version\":1,\"diagnostics\":["),
        "got: {text}"
    );
    assert!(text.trim_end().ends_with("\"total\":3}"), "got: {text}");
    // Canonical order: alpha.rs before zeta.rs, and within zeta.rs the
    // line-2 cast before the line-4 marker.
    let alpha = text.find("alpha.rs").unwrap();
    let zeta = text.find("zeta.rs").unwrap();
    assert!(alpha < zeta);
    let cast = text.find("unguarded-as-cast").unwrap();
    let marker = text.find("todo-marker").unwrap();
    assert!(cast < marker);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn format_json_is_the_json_alias() {
    let dir = scratch("fmtjson");
    seed(
        &dir,
        "crates/demo/src/lib.rs",
        "fn g(x: u64) -> u8 {\n    x as u8\n}\n",
    );
    let alias = run(&["--json", dir.to_str().unwrap()]);
    let spelled = run(&["--format", "json", dir.to_str().unwrap()]);
    assert_eq!(alias.status.code(), Some(1));
    assert_eq!(alias.stdout, spelled.stdout);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sarif_output_is_byte_stable_and_well_formed() {
    let dir = scratch("sarif");
    seed(
        &dir,
        "crates/demo/src/lib.rs",
        "fn g(x: u64) -> u8 {\n    x as u8\n}\n// TODO: later\n",
    );
    let first = run(&["--format", "sarif", dir.to_str().unwrap()]);
    let second = run(&["--format", "sarif", dir.to_str().unwrap()]);
    assert_eq!(first.status.code(), Some(1));
    assert_eq!(
        first.stdout, second.stdout,
        "--format sarif must be byte-stable across runs"
    );
    let text = String::from_utf8(first.stdout).unwrap();
    assert!(text.starts_with("{\"$schema\":"), "got: {text}");
    assert!(text.contains("\"version\":\"2.1.0\""));
    assert!(text.contains("\"name\":\"soulmate-lint\""));
    assert!(text.contains("\"ruleId\":\"unguarded-as-cast\""));
    assert!(text.contains("\"ruleId\":\"todo-marker\""));
    assert!(text.ends_with('\n'), "SARIF output must end with a newline");
    // A clean run still emits a complete log (exit 0, empty results).
    let clean = scratch("sarif-clean");
    seed(&clean, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let out = run(&["--format", "sarif", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("\"results\":[]"));
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&clean).unwrap();
}

#[test]
fn list_rules_prints_the_full_catalog() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    let ids: Vec<&str> = text
        .lines()
        .map(|l| l.split('\t').next().unwrap())
        .collect();
    for id in [
        "nan-comparator",
        "non-atomic-write",
        "panic-in-serving",
        "allow-without-proof",
        "unguarded-as-cast",
        "todo-marker",
        "no-unsafe",
        "lock-order",
        "blocking-under-lock",
        "lock-unwrap",
        "condvar-no-loop",
        "metric-name-drift",
    ] {
        assert!(ids.contains(&id), "missing {id} in: {text}");
    }
    // Every line is `id\tsummary` with a non-empty summary.
    for line in text.lines() {
        let (id, summary) = line.split_once('\t').expect("tab-separated");
        assert!(!id.is_empty() && !summary.is_empty(), "bad line: {line}");
    }
}

#[test]
fn overlapping_roots_report_each_finding_once() {
    let dir = scratch("overlap");
    seed(
        &dir,
        "crates/demo/src/lib.rs",
        "fn g(x: u64) -> u8 {\n    x as u8\n}\n",
    );
    let root = dir.to_str().unwrap().to_string();
    let nested = dir.join("crates").join("demo");
    let file = dir.join("crates/demo/src/lib.rs");
    let out = run(&[
        root.as_str(),
        nested.to_str().unwrap(),
        file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        text.matches("unguarded-as-cast").count(),
        1,
        "deduped roots must lint the file once: {text}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn design_flag_drives_the_drift_phase() {
    let dir = scratch("design");
    seed(
        &dir,
        "crates/demo/src/lib.rs",
        "fn f(obs: &Registry) {\n    obs.incr(\"demo.hits\", 1);\n}\n",
    );
    seed(
        &dir,
        "DESIGN.md",
        "# doc\n<!-- metric-inventory:begin -->\n- `demo.misses` — never registered\n<!-- metric-inventory:end -->\n",
    );
    let design = dir.join("DESIGN.md");
    let out = run(&["--design", design.to_str().unwrap(), dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("demo.hits") && text.contains("demo.misses"),
        "both drift directions expected: {text}"
    );
    // Without --design (and no ./DESIGN.md in the cwd the binary sees),
    // the same tree is judged on per-file rules alone.
    let without = run(&[dir.to_str().unwrap()]);
    assert_eq!(without.status.code(), Some(0), "drift phase must be opt-in");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_root_exits_two() {
    let dir = scratch("missing");
    let gone = dir.join("no-such-subdir");
    let out = run(&[gone.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    fs::remove_dir_all(&dir).unwrap();
}
