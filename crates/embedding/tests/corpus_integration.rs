//! Integration tests: embedding models trained on the synthetic corpus.
//!
//! These mirror Section 5.2.1 at miniature scale: the planted lexicon
//! structure must be recoverable — concept-mates similar, analogy accuracy
//! above chance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use soulmate_corpus::{build_analogy_suite, generate, EncodedCorpus, GeneratorConfig};
use soulmate_embedding::{
    evaluate_analogy, train_cbow, train_svd, CbowConfig, CoocMatrix, SoftmaxMode, SvdConfig,
};
use soulmate_text::TokenizerConfig;

fn corpus() -> (soulmate_corpus::Dataset, EncodedCorpus) {
    let d = generate(&GeneratorConfig::small()).unwrap();
    let enc = d.encode(&TokenizerConfig::default(), 3);
    (d, enc)
}

fn docs(enc: &EncodedCorpus) -> Vec<&[u32]> {
    enc.documents()
}

#[test]
fn cbow_groups_concept_words() {
    let (d, enc) = corpus();
    let cfg = CbowConfig {
        dim: 32,
        window: 4,
        epochs: 8,
        lr: 0.05,
        mode: SoftmaxMode::Negative(5),
        subsample: None,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let e = train_cbow(&docs(&enc), enc.vocab.len(), &cfg, &mut rng).unwrap();

    let lex = &d.ground_truth.lexicon;
    // Words of the same concept should be closer than words of different
    // concepts, on average.
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for (ci, spec) in lex.concepts.iter().enumerate().take(4) {
        let ids: Vec<u32> = spec
            .base_forms
            .iter()
            .take(6)
            .filter_map(|w| enc.vocab.id(w))
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                intra.push(e.cosine(a, b));
            }
        }
        let other = &lex.concepts[(ci + 2) % lex.concepts.len()];
        let oids: Vec<u32> = other
            .base_forms
            .iter()
            .take(6)
            .filter_map(|w| enc.vocab.id(w))
            .collect();
        for &a in &ids {
            for &b in &oids {
                inter.push(e.cosine(a, b));
            }
        }
    }
    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    assert!(
        avg(&intra) > avg(&inter) + 0.15,
        "concept structure not learned: intra={} inter={}",
        avg(&intra),
        avg(&inter)
    );
}

#[test]
fn cbow_beats_chance_on_planted_analogies() {
    let (d, enc) = corpus();
    let cfg = CbowConfig {
        dim: 32,
        window: 4,
        epochs: 8,
        lr: 0.05,
        mode: SoftmaxMode::Negative(5),
        subsample: None,
    };
    let mut rng = StdRng::seed_from_u64(12);
    let e = train_cbow(&docs(&enc), enc.vocab.len(), &cfg, &mut rng).unwrap();
    let questions: Vec<(u32, u32, u32, u32)> =
        build_analogy_suite(&d.ground_truth.lexicon, &enc.vocab, 300, 5)
            .into_iter()
            .map(|q| (q.a, q.b, q.c, q.expected))
            .collect();
    let acc = evaluate_analogy(&e, &questions);
    // Chance level is ~1/|V| (< 0.5%); structured training should be far
    // above it even at miniature scale.
    assert!(acc > 0.05, "analogy accuracy only {acc}");
}

#[test]
fn svd_runs_on_real_corpus_shape() {
    let (_, enc) = corpus();
    let cooc = CoocMatrix::build(&docs(&enc), enc.vocab.len(), 4, false);
    let mut rng = StdRng::seed_from_u64(13);
    let e = train_svd(
        &cooc,
        &SvdConfig {
            dim: 24,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    assert_eq!(e.len(), enc.vocab.len());
    assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
}
