//! Continuous bag-of-words (CBOW) training from scratch (Mikolov et al.
//! 2013; the paper's Eqs 2–4 and Fig. 6).
//!
//! The hidden layer is the mean of the context words' input vectors
//! (Eq. 2); the output layer scores every vocabulary word (Eq. 3) and is
//! normalized by softmax (Eq. 4). Two objectives are provided:
//!
//! * [`SoftmaxMode::Full`] — the exact softmax of the paper, O(|V|) per
//!   target, fine for slab-sized vocabularies;
//! * [`SoftmaxMode::Negative`] — negative sampling (the word2vec speedup),
//!   the default for corpus-scale training.
//!
//! Learning follows the original word2vec reference implementation:
//! dynamic window shrinking, linearly decaying learning rate, unigram^0.75
//! negative-sampling table.

use crate::embedding::Embedding;
use crate::error::EmbeddingError;
use rand::{Rng, SeedableRng};
use soulmate_linalg::{axpy, dot, softmax_in_place, Matrix};
use soulmate_text::WordId;

/// Output-layer objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftmaxMode {
    /// Exact softmax over the whole vocabulary (Eq. 4).
    Full,
    /// Negative sampling with this many noise words per target.
    Negative(usize),
}

/// CBOW hyper-parameters.
#[derive(Debug, Clone)]
pub struct CbowConfig {
    /// Hidden-layer dimensionality `N`.
    pub dim: usize,
    /// Maximum context window `C` on each side.
    pub window: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to `lr / 10^4`).
    pub lr: f32,
    /// Output-layer objective.
    pub mode: SoftmaxMode,
    /// Frequent-word subsampling threshold `t` (word2vec's 1e-3): a word
    /// with corpus frequency `f` is kept with probability
    /// `sqrt(t/f) + t/f`. `None` disables subsampling.
    pub subsample: Option<f32>,
}

impl Default for CbowConfig {
    fn default() -> Self {
        CbowConfig {
            dim: 50,
            window: 4,
            epochs: 5,
            lr: 0.05,
            mode: SoftmaxMode::Negative(5),
            subsample: None,
        }
    }
}

/// Train CBOW over encoded documents.
///
/// Returns the hidden-layer (input) matrix as the word embedding, per the
/// paper: "both models return the word vectors that are trained in the
/// hidden layer".
///
/// # Errors
/// * [`EmbeddingError::EmptyVocabulary`] when `vocab_size == 0`;
/// * [`EmbeddingError::EmptyCorpus`] when no document has ≥ 2 tokens;
/// * [`EmbeddingError::InvalidConfig`] for zero dim/window/epochs.
pub fn train_cbow<R: Rng>(
    docs: &[impl AsRef<[WordId]>],
    vocab_size: usize,
    config: &CbowConfig,
    rng: &mut R,
) -> Result<Embedding, EmbeddingError> {
    validate(vocab_size, config)?;
    let trainable = docs.iter().filter(|d| d.as_ref().len() >= 2).count();
    if trainable == 0 {
        return Err(EmbeddingError::EmptyCorpus);
    }

    let dim = config.dim;
    let mut input = Matrix::random_uniform(vocab_size, dim, 0.5 / dim as f32, rng);
    let mut output = Matrix::zeros(vocab_size, dim);
    train_cbow_core(docs, vocab_size, config, &mut input, &mut output, rng);
    Ok(Embedding::from_matrix(input))
}

/// The CBOW SGD loop over pre-initialized matrices (shared by the
/// sequential and the sharded-parallel trainers).
fn train_cbow_core<R: Rng>(
    docs: &[impl AsRef<[WordId]>],
    vocab_size: usize,
    config: &CbowConfig,
    input: &mut Matrix,
    output: &mut Matrix,
    rng: &mut R,
) {
    let dim = config.dim;
    let unigram = UnigramTable::build(docs, vocab_size);
    let total_targets: usize =
        docs.iter().map(|d| d.as_ref().len()).sum::<usize>().max(1) * config.epochs;
    let min_lr = config.lr * 1e-4;

    let keep_prob = config
        .subsample
        .map(|t| keep_probabilities(docs, vocab_size, t));

    let mut h = vec![0.0f32; dim];
    let mut e = vec![0.0f32; dim];
    let mut logits = vec![0.0f32; vocab_size];
    let mut filtered: Vec<WordId> = Vec::new();
    let mut seen = 0usize;

    for _ in 0..config.epochs {
        for doc in docs {
            let words: &[WordId] = match &keep_prob {
                Some(kp) => {
                    filtered.clear();
                    filtered.extend(
                        doc.as_ref()
                            .iter()
                            // u32 word id → usize is widening (usize ≥ 32 bits on supported targets)
                            .filter(|&&w| rng.gen_range(0.0f32..1.0) < kp[w as usize])
                            .copied(),
                    );
                    &filtered
                }
                None => doc.as_ref(),
            };
            if words.len() < 2 {
                seen += words.len();
                continue;
            }
            for t in 0..words.len() {
                seen += 1;
                let lr = (config.lr * (1.0 - seen as f32 / total_targets as f32)).max(min_lr);
                // Dynamic window, as in word2vec: uniform in [1, window].
                let b = rng.gen_range(1..=config.window);
                let lo = t.saturating_sub(b);
                let hi = (t + b + 1).min(words.len());
                let context: &[WordId] = &words[lo..hi];
                let n_context = context.len() - 1; // excluding the target
                if n_context == 0 {
                    continue;
                }
                // h = mean of context input vectors (Eq. 2).
                h.iter_mut().for_each(|x| *x = 0.0);
                for (ci, &c) in context.iter().enumerate() {
                    if lo + ci == t {
                        continue;
                    }
                    // u32 word id → usize is widening
                    axpy(1.0, input.row(c as usize), &mut h);
                }
                let inv = 1.0 / n_context as f32;
                h.iter_mut().for_each(|x| *x *= inv);

                e.iter_mut().for_each(|x| *x = 0.0);
                // u32 word id → usize is widening
                let target = words[t] as usize;
                match config.mode {
                    SoftmaxMode::Negative(k) => {
                        // Positive example plus k noise words.
                        train_pair(target, 1.0, lr, &h, &mut e, output);
                        for _ in 0..k {
                            let noise = unigram.sample(rng);
                            if noise == target {
                                continue;
                            }
                            train_pair(noise, 0.0, lr, &h, &mut e, output);
                        }
                    }
                    SoftmaxMode::Full => {
                        // Exact softmax (Eqs 3–4): u_j = v'_j · h.
                        for (j, l) in logits.iter_mut().enumerate() {
                            *l = dot(output.row(j), &h);
                        }
                        softmax_in_place(&mut logits);
                        for (j, &y) in logits.iter().enumerate() {
                            let err = y - if j == target { 1.0 } else { 0.0 };
                            if err == 0.0 {
                                continue;
                            }
                            let g = lr * err;
                            // e accumulates against the pre-update row —
                            // the same convention as word2vec's SGNS path.
                            axpy(-g, output.row(j), &mut e);
                            axpy(-g, &h, output.row_mut(j));
                        }
                    }
                }
                // Propagate the accumulated error to every context word.
                for (ci, &c) in context.iter().enumerate() {
                    if lo + ci == t {
                        continue;
                    }
                    // u32 word id → usize is widening
                    axpy(1.0, &e, input.row_mut(c as usize));
                }
            }
        }
    }
}

/// Sharded-parallel CBOW: the corpus is split into `threads` contiguous
/// shards that train *from a shared random initialization* on independent
/// threads; the shard models are then averaged, weighted by shard token
/// count (one-shot parameter averaging). Deterministic for a fixed
/// `(seed, threads)` pair; results differ slightly from the sequential
/// trainer (averaging approximates, not replays, the joint SGD).
///
/// # Errors
/// Same conditions as [`train_cbow`].
pub fn train_cbow_parallel(
    docs: &[impl AsRef<[WordId]> + Sync],
    vocab_size: usize,
    config: &CbowConfig,
    threads: usize,
    seed: u64,
) -> Result<Embedding, EmbeddingError> {
    validate(vocab_size, config)?;
    let trainable = docs.iter().filter(|d| d.as_ref().len() >= 2).count();
    if trainable == 0 {
        return Err(EmbeddingError::EmptyCorpus);
    }
    let threads = threads.max(1).min(docs.len().max(1));

    // Shared initialization: every shard starts in the same basin so the
    // averaged model is meaningful.
    let dim = config.dim;
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(seed);
    let init_input = Matrix::random_uniform(vocab_size, dim, 0.5 / dim as f32, &mut init_rng);

    let shard_size = docs.len().div_ceil(threads);
    let shards: Vec<&[_]> = docs.chunks(shard_size).collect();
    let results: Vec<(Matrix, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards.len());
        for (tid, shard) in shards.iter().enumerate() {
            let mut input = init_input.clone();
            let config = config.clone();
            handles.push(scope.spawn(move || {
                let mut output = Matrix::zeros(vocab_size, dim);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ ((tid as u64 + 1) << 17));
                train_cbow_core(
                    shard,
                    vocab_size,
                    &config,
                    &mut input,
                    &mut output,
                    &mut rng,
                );
                let tokens: usize = shard.iter().map(|d| d.as_ref().len()).sum();
                (input, tokens)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("cbow shard panicked"))
            .collect()
    });

    // Token-weighted average of the shard input matrices.
    let total_tokens: usize = results.iter().map(|(_, t)| *t).sum();
    let mut averaged = Matrix::zeros(vocab_size, dim);
    for (m, tokens) in &results {
        let w = if total_tokens > 0 {
            *tokens as f32 / total_tokens as f32
        } else {
            1.0 / results.len() as f32
        };
        axpy_matrix(w, m, &mut averaged);
    }
    Ok(Embedding::from_matrix(averaged))
}

/// `acc += w * m`, element-wise over whole matrices.
fn axpy_matrix(w: f32, m: &Matrix, acc: &mut Matrix) {
    for i in 0..m.rows() {
        axpy(w, m.row(i), acc.row_mut(i));
    }
}

/// One SGNS pair update: label 1 for the true target, 0 for noise.
#[inline]
fn train_pair(word: usize, label: f32, lr: f32, h: &[f32], e: &mut [f32], output: &mut Matrix) {
    let row = output.row(word);
    let f = sigmoid(dot(row, h));
    let g = lr * (label - f);
    // e += g * W'_w (with the pre-update row, as word2vec does).
    axpy(g, row, e);
    // W'_w += g * h.
    let row = output.row_mut(word);
    axpy(g, h, row);
}

/// Per-word keep probability under word2vec subsampling:
/// `p(w) = sqrt(t/f(w)) + t/f(w)` clamped to 1, where `f(w)` is the word's
/// relative corpus frequency.
pub(crate) fn keep_probabilities(
    docs: &[impl AsRef<[WordId]>],
    vocab_size: usize,
    t: f32,
) -> Vec<f32> {
    let mut counts = vec![0u64; vocab_size];
    let mut total = 0u64;
    for doc in docs {
        for &w in doc.as_ref() {
            // u32 word id → usize is widening; the bound is checked right here
            if (w as usize) < vocab_size {
                counts[w as usize] += 1; // in-bounds per the check above
                total += 1;
            }
        }
    }
    counts
        .iter()
        .map(|&c| {
            if c == 0 || total == 0 {
                return 1.0;
            }
            let f = c as f32 / total as f32;
            ((t / f).sqrt() + t / f).min(1.0)
        })
        .collect()
}

/// Numerically clamped logistic function.
#[inline]
fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

/// word2vec's unigram^0.75 negative-sampling table.
pub(crate) struct UnigramTable {
    table: Vec<u32>,
}

impl UnigramTable {
    const SIZE: usize = 1 << 17;

    pub(crate) fn build(docs: &[impl AsRef<[WordId]>], vocab_size: usize) -> UnigramTable {
        let mut counts = vec![0u64; vocab_size];
        for doc in docs {
            for &w in doc.as_ref() {
                // u32 word id → usize is widening; the bound is checked right here
                if (w as usize) < vocab_size {
                    counts[w as usize] += 1; // in-bounds per the check above
                }
            }
        }
        let powered: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = powered.iter().sum();
        let mut table = Vec::with_capacity(Self::SIZE);
        if total == 0.0 {
            // Degenerate corpus: uniform table.
            for i in 0..Self::SIZE {
                // i % vocab_size < vocab_size ≪ u32::MAX
                table.push((i % vocab_size.max(1)) as u32);
            }
            return UnigramTable { table };
        }
        let mut cum = 0.0f64;
        let mut w = 0usize;
        for i in 0..Self::SIZE {
            let frac = (i as f64 + 0.5) / Self::SIZE as f64;
            while cum + powered[w] / total < frac && w + 1 < vocab_size {
                cum += powered[w] / total;
                w += 1;
            }
            // w is a vocab index < vocab_size ≪ u32::MAX
            table.push(w as u32);
        }
        UnigramTable { table }
    }

    #[inline]
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        // table entries are u32 vocab indices; usize is widening
        self.table[rng.gen_range(0..self.table.len())] as usize
    }
}

fn validate(vocab_size: usize, config: &CbowConfig) -> Result<(), EmbeddingError> {
    if vocab_size == 0 {
        return Err(EmbeddingError::EmptyVocabulary);
    }
    if config.dim == 0 {
        return Err(EmbeddingError::InvalidConfig("dim must be > 0"));
    }
    if config.window == 0 {
        return Err(EmbeddingError::InvalidConfig("window must be > 0"));
    }
    if config.epochs == 0 {
        return Err(EmbeddingError::InvalidConfig("epochs must be > 0"));
    }
    if config.lr.is_nan() || config.lr <= 0.0 {
        return Err(EmbeddingError::InvalidConfig("lr must be positive"));
    }
    if let SoftmaxMode::Negative(0) = config.mode {
        return Err(EmbeddingError::InvalidConfig(
            "negative sampling needs k >= 1",
        ));
    }
    if let Some(t) = config.subsample {
        if t.is_nan() || t <= 0.0 {
            return Err(EmbeddingError::InvalidConfig(
                "subsample threshold must be positive",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two 10-word cliques that never co-occur: {0..10} and {10..20}.
    /// Documents sample 6 random words from one clique, so in-clique words
    /// share most of their context distribution (small cliques with
    /// round-robin docs would give words *complementary* contexts and CBOW
    /// would rightly anti-correlate them).
    fn clique_docs(n: usize) -> Vec<Vec<WordId>> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0u32 } else { 10 };
                (0..6).map(|_| base + rng.gen_range(0..10)).collect()
            })
            .collect()
    }

    fn intra_vs_inter(e: &Embedding) -> (f32, f32) {
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                intra.push(e.cosine(a, b));
                intra.push(e.cosine(a + 10, b + 10));
            }
            for b in 10..20u32 {
                inter.push(e.cosine(a, b));
            }
        }
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        (avg(&intra), avg(&inter))
    }

    #[test]
    fn negative_sampling_separates_cliques() {
        let docs = clique_docs(200);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CbowConfig {
            dim: 16,
            window: 3,
            epochs: 80,
            lr: 0.1,
            mode: SoftmaxMode::Negative(5),
            subsample: None,
        };
        let e = train_cbow(&docs, 20, &cfg, &mut rng).unwrap();
        let (intra, inter) = intra_vs_inter(&e);
        assert!(
            intra > inter + 0.3,
            "cliques not separated: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn full_softmax_separates_cliques() {
        let docs = clique_docs(150);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CbowConfig {
            dim: 12,
            window: 3,
            epochs: 60,
            lr: 0.2,
            mode: SoftmaxMode::Full,
            subsample: None,
        };
        let e = train_cbow(&docs, 20, &cfg, &mut rng).unwrap();
        let (intra, inter) = intra_vs_inter(&e);
        assert!(
            intra > inter + 0.2,
            "full softmax failed: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let docs = clique_docs(20);
        let cfg = CbowConfig::default();
        let e1 = train_cbow(&docs, 20, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        let e2 = train_cbow(&docs, 20, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(e1.matrix().as_slice(), e2.matrix().as_slice());
    }

    #[test]
    fn rejects_invalid_configs() {
        let docs = clique_docs(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_cbow(&docs, 0, &CbowConfig::default(), &mut rng).is_err());
        for bad in [
            CbowConfig {
                dim: 0,
                ..Default::default()
            },
            CbowConfig {
                window: 0,
                ..Default::default()
            },
            CbowConfig {
                epochs: 0,
                ..Default::default()
            },
            CbowConfig {
                lr: 0.0,
                ..Default::default()
            },
            CbowConfig {
                mode: SoftmaxMode::Negative(0),
                ..Default::default()
            },
        ] {
            assert!(train_cbow(&docs, 20, &bad, &mut rng).is_err());
        }
    }

    #[test]
    fn empty_corpus_rejected() {
        let docs: Vec<Vec<WordId>> = vec![vec![0], vec![]];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            train_cbow(&docs, 2, &CbowConfig::default(), &mut rng),
            Err(EmbeddingError::EmptyCorpus)
        ));
    }

    #[test]
    fn embedding_has_expected_shape() {
        let docs = clique_docs(10);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CbowConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        };
        let e = train_cbow(&docs, 20, &cfg, &mut rng).unwrap();
        assert_eq!(e.len(), 20);
        assert_eq!(e.dim(), 8);
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_cbow_separates_cliques_and_is_deterministic() {
        let docs = clique_docs(200);
        let cfg = CbowConfig {
            dim: 16,
            window: 3,
            epochs: 40,
            lr: 0.1,
            mode: SoftmaxMode::Negative(5),
            subsample: None,
        };
        let a = train_cbow_parallel(&docs, 20, &cfg, 4, 7).unwrap();
        let b = train_cbow_parallel(&docs, 20, &cfg, 4, 7).unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
        // Structure survives the parameter averaging.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for x in 0..10u32 {
            for y in (x + 1)..10 {
                intra.push(a.cosine(x, y));
            }
            for y in 10..20u32 {
                inter.push(a.cosine(x, y));
            }
        }
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            avg(&intra) > avg(&inter) + 0.2,
            "parallel cbow lost structure: intra={} inter={}",
            avg(&intra),
            avg(&inter)
        );
    }

    #[test]
    fn parallel_cbow_single_thread_close_to_sequential_shape() {
        // threads = 1 still trains a usable model (single shard, no
        // averaging losses) and rejects the same bad inputs.
        let docs = clique_docs(50);
        let cfg = CbowConfig {
            dim: 8,
            epochs: 5,
            ..Default::default()
        };
        let e = train_cbow_parallel(&docs, 20, &cfg, 1, 3).unwrap();
        assert_eq!(e.len(), 20);
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
        assert!(train_cbow_parallel(&Vec::<Vec<WordId>>::new(), 20, &cfg, 2, 3).is_err());
    }

    #[test]
    fn unigram_table_prefers_frequent_words() {
        let docs: Vec<Vec<WordId>> = vec![vec![0; 90].into_iter().chain(vec![1; 10]).collect()];
        let table = UnigramTable::build(&docs, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut count0 = 0;
        for _ in 0..1000 {
            if table.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // 90^0.75 : 10^0.75 ≈ 29 : 5.6 → ~84% of samples.
        assert!(count0 > 700, "unigram skew missing: {count0}/1000");
        assert!(count0 < 950);
    }

    #[test]
    fn subsampling_still_trains_and_differs() {
        let docs = clique_docs(100);
        let base = CbowConfig {
            dim: 16,
            window: 3,
            epochs: 20,
            lr: 0.1,
            mode: SoftmaxMode::Negative(5),
            subsample: None,
        };
        let plain = train_cbow(&docs, 20, &base, &mut StdRng::seed_from_u64(4)).unwrap();
        let sub = train_cbow(
            &docs,
            20,
            &CbowConfig {
                subsample: Some(1e-2),
                ..base
            },
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        assert_ne!(plain.matrix().as_slice(), sub.matrix().as_slice());
        assert!(sub.matrix().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn keep_probabilities_penalize_frequent_words() {
        let docs: Vec<Vec<WordId>> = vec![std::iter::repeat_n(0, 95).chain([1; 5]).collect()];
        let kp = keep_probabilities(&docs, 2, 1e-2);
        assert!(kp[0] < kp[1], "frequent word should be kept less: {kp:?}");
        assert!((0.0..=1.0).contains(&kp[0]));
        assert_eq!(keep_probabilities(&docs, 3, 1e-2)[2], 1.0);
    }

    #[test]
    fn invalid_subsample_rejected() {
        let docs = clique_docs(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_cbow(
            &docs,
            20,
            &CbowConfig {
                subsample: Some(0.0),
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(sigmoid(100.0), 1.0);
        assert_eq!(sigmoid(-100.0), 0.0);
        assert!(sigmoid(2.0) > 0.8);
    }
}
