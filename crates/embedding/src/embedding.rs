//! The common trained-embedding type all models produce.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use soulmate_linalg::kernels::{top1_cosine_batch, NormalizedRows};
use soulmate_linalg::{cosine, dot, l2_norm, Matrix};
use soulmate_text::{SimilarWords, WordId};
use std::sync::OnceLock;

/// A trained word embedding: one `dim`-dimensional vector per vocabulary
/// word, with cached norms for fast cosine queries and a lazily-built
/// unit-normalized copy for batched nearest-neighbor search.
#[derive(Debug, Clone)]
pub struct Embedding {
    vectors: Matrix,
    norms: Vec<f32>,
    /// Unit-row view, built once on first analogy query (it doubles the
    /// matrix footprint, so training paths that never run analogies do not
    /// pay for it). `OnceLock` keeps `&self` queries thread-safe.
    normalized: OnceLock<NormalizedRows>,
}

impl Embedding {
    /// Wrap a `|V| x dim` matrix of word vectors.
    pub fn from_matrix(vectors: Matrix) -> Embedding {
        let norms = vectors.iter_rows().map(l2_norm).collect();
        Embedding {
            vectors,
            norms,
            normalized: OnceLock::new(),
        }
    }

    /// The unit-normalized vocabulary, computed once per embedding.
    fn normalized(&self) -> &NormalizedRows {
        self.normalized
            .get_or_init(|| NormalizedRows::from_matrix(&self.vectors))
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.vectors.rows()
    }

    /// True when the embedding covers no words.
    pub fn is_empty(&self) -> bool {
        self.vectors.rows() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// The vector of word `w`.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn vector(&self, w: WordId) -> &[f32] {
        // u32 word id → usize is widening (out-of-range panics, as documented)
        self.vectors.row(w as usize)
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.vectors
    }

    /// Cosine similarity between two words (Eq. 5).
    pub fn cosine(&self, a: WordId, b: WordId) -> f32 {
        // u32 word ids → usize is widening; in-vocab per this type's contract
        let (na, nb) = (self.norms[a as usize], self.norms[b as usize]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot(self.vector(a), self.vector(b)) / (na * nb)).clamp(-1.0, 1.0)
    }

    /// The `k` most similar words to `w` (descending similarity, `w`
    /// excluded). Zero-norm words never appear.
    pub fn most_similar(&self, w: WordId, k: usize) -> Vec<(WordId, f32)> {
        // u32 word id → usize is widening; the bound is checked right here
        if (w as usize) >= self.len() || k == 0 {
            return Vec::new();
        }
        let mut best: Vec<(WordId, f32)> = Vec::with_capacity(k + 1);
        for cand in 0..self.len() as WordId {
            // cand < len() by the loop bound; u32→usize is widening
            if cand == w || self.norms[cand as usize] == 0.0 {
                continue;
            }
            let s = self.cosine(w, cand);
            // Keep a small sorted buffer — k is tiny (ζ ≈ 10).
            if best.len() < k || s > best.last().map(|&(_, bs)| bs).unwrap_or(f32::NEG_INFINITY) {
                let pos = best
                    .iter()
                    .position(|&(_, bs)| s > bs)
                    .unwrap_or(best.len());
                best.insert(pos, (cand, s));
                best.truncate(k);
            }
        }
        best
    }

    /// 3CosAdd analogy query: the word most similar to `b - a + c`,
    /// excluding `a`, `b`, `c` themselves. `None` when any input is out of
    /// range or has a zero vector.
    ///
    /// A batch of one — evaluation loops should call [`Embedding::analogy_batch`]
    /// directly so the whole question set shares each cached vocabulary tile.
    pub fn analogy(&self, a: WordId, b: WordId, c: WordId) -> Option<WordId> {
        self.analogy_batch(&[(a, b, c)])[0]
    }

    /// Batched 3CosAdd: answer every `(a, b, c)` question in one pass over
    /// the pre-normalized vocabulary.
    ///
    /// All answerable questions are assembled into a query matrix of
    /// `b̂ - â + ĉ` directions and scored tile by tile against the unit
    /// vocabulary ([`top1_cosine_batch`]), so each vocabulary row is
    /// normalized exactly once per embedding — never per query — and each
    /// cache-resident tile serves the entire question set. Unanswerable
    /// questions (out-of-range or zero-vector words) yield `None` at their
    /// position; answers are index-aligned with `questions`.
    pub fn analogy_batch(&self, questions: &[(WordId, WordId, WordId)]) -> Vec<Option<WordId>> {
        let n = self.len();
        let mut answers: Vec<Option<WordId>> = vec![None; questions.len()];
        // (position in `answers`, masked words) per answerable question.
        let mut meta: Vec<(usize, [WordId; 3])> = Vec::with_capacity(questions.len());
        let mut qrows: Vec<Vec<f32>> = Vec::with_capacity(questions.len());
        for (slot, &(a, b, c)) in questions.iter().enumerate() {
            // u32 word ids → usize is widening; the bound is checked right here
            if [a, b, c].iter().any(|&w| (w as usize) >= n) {
                continue;
            }
            // in-range per the check above
            if [a, b, c].iter().any(|&w| self.norms[w as usize] == 0.0) {
                continue;
            }
            // Query direction b̂ - â + ĉ; its own norm is irrelevant to the
            // argmax, so it is left unnormalized.
            let mut q = vec![0.0f32; self.dim()];
            for (sign, w) in [(1.0f32, b), (-1.0, a), (1.0, c)] {
                // in-range per the checks at the top of the loop
                let norm = self.norms[w as usize];
                for (qi, vi) in q.iter_mut().zip(self.vector(w)) {
                    *qi += sign * vi / norm;
                }
            }
            meta.push((slot, [a, b, c]));
            qrows.push(q);
        }
        if qrows.is_empty() {
            return answers;
        }
        let queries = Matrix::from_rows(&qrows).expect("query rows share the embedding dim");
        let excluded = |qi: usize, cand: usize| meta[qi].1.contains(&(cand as WordId));
        let best = top1_cosine_batch(&queries, self.normalized(), &excluded);
        for ((slot, _), found) in meta.iter().zip(best) {
            answers[*slot] = found.map(|(w, _)| w as WordId);
        }
        answers
    }

    /// Full cosine similarity to every word (used to build the paper's
    /// `B^TCBOW` |V|x|V| rows).
    pub fn similarity_row(&self, w: WordId) -> Vec<f32> {
        (0..self.len() as WordId)
            .map(|o| self.cosine(w, o))
            .collect()
    }
}

impl Serialize for Embedding {
    /// Serializes only the vector matrix; norms are derived state and are
    /// recomputed on deserialization.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.vectors.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Embedding {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let vectors = Matrix::deserialize(deserializer)?;
        Ok(Embedding::from_matrix(vectors))
    }
}

impl SimilarWords for Embedding {
    fn top_similar(&self, word: WordId, zeta: usize) -> Vec<WordId> {
        self.most_similar(word, zeta)
            .into_iter()
            .map(|(w, _)| w)
            .collect()
    }
}

/// Convenience: raw cosine between two external vectors re-exported for
/// callers that mix embedding vectors with composed (tweet/author) vectors.
pub fn vector_cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built embedding: words 0,1 point along +x; 2,3 along +y;
    /// word 4 is the zero vector.
    fn toy() -> Embedding {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
            vec![0.0, 0.0],
        ])
        .unwrap();
        Embedding::from_matrix(m)
    }

    #[test]
    fn basic_accessors() {
        let e = toy();
        assert_eq!(e.len(), 5);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.vector(2), &[0.0, 1.0]);
    }

    #[test]
    fn cosine_matches_geometry() {
        let e = toy();
        assert!((e.cosine(0, 0) - 1.0).abs() < 1e-6);
        assert!(e.cosine(0, 1) > 0.9);
        assert!(e.cosine(0, 2) < 0.1);
        assert_eq!(e.cosine(0, 4), 0.0);
    }

    #[test]
    fn most_similar_orders_by_similarity() {
        let e = toy();
        let sims = e.most_similar(0, 3);
        assert_eq!(sims[0].0, 1);
        assert!(sims[0].1 > sims[1].1);
        // Zero-norm word 4 never appears.
        assert!(sims.iter().all(|&(w, _)| w != 4));
        // Self excluded.
        assert!(sims.iter().all(|&(w, _)| w != 0));
    }

    #[test]
    fn most_similar_k_zero_or_oob() {
        let e = toy();
        assert!(e.most_similar(0, 0).is_empty());
        assert!(e.most_similar(99, 3).is_empty());
    }

    #[test]
    fn similar_words_trait_strips_scores() {
        let e = toy();
        let ws = e.top_similar(0, 2);
        assert_eq!(ws, vec![1, 3]);
    }

    #[test]
    fn analogy_parallelogram() {
        // 0:1 (x-words) :: 2:? should give 3 (the other y-word):
        // q = v1 - v0 + v2 = (-0.1, 0.1) + (0, 1) ≈ (−0.08, 1.06)… closest
        // to word 3's direction among candidates excluding {0,1,2}.
        let e = toy();
        assert_eq!(e.analogy(0, 1, 2), Some(3));
    }

    #[test]
    fn analogy_rejects_bad_inputs() {
        let e = toy();
        assert_eq!(e.analogy(0, 1, 99), None);
        assert_eq!(e.analogy(0, 1, 4), None); // zero vector
    }

    #[test]
    fn similarity_row_full_width() {
        let e = toy();
        let row = e.similarity_row(0);
        assert_eq!(row.len(), 5);
        assert!((row[0] - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|s| (-1.0..=1.0).contains(s)));
    }
}
