//! Word-analogy evaluation (Section 5.2.1, Fig. 8a).
//!
//! Answers *"a is to b as c is to ?"* with 3CosAdd over the embedding and
//! scores accuracy against the expected word. The same accuracy, computed
//! per slab, becomes the Ã weights of the TCBOW fusion (Eqs 6–12).

use crate::embedding::Embedding;
use soulmate_text::WordId;

/// Accuracy of `embedding` on an analogy question set: the fraction of
/// questions where the 3CosAdd answer equals the expected word. Questions
/// whose words fall outside the embedding are skipped (not counted).
/// Returns `0.0` when no question is answerable.
///
/// The whole set is scored through [`Embedding::analogy_batch`]: the
/// vocabulary is normalized once and every cache-resident vocabulary tile
/// serves all questions, instead of one linear scan (with a norm division
/// per candidate) per question. This is the inner loop of the TCBOW
/// Ã-weight computation, which re-scores the suite once per temporal slab.
pub fn evaluate_analogy(
    embedding: &Embedding,
    questions: &[(WordId, WordId, WordId, WordId)],
) -> f32 {
    let triples: Vec<(WordId, WordId, WordId)> =
        questions.iter().map(|&(a, b, c, _)| (a, b, c)).collect();
    let answers = embedding.analogy_batch(&triples);
    let mut answered = 0usize;
    let mut correct = 0usize;
    for (&(_, _, _, expected), got) in questions.iter().zip(answers) {
        if let Some(got) = got {
            answered += 1;
            if got == expected {
                correct += 1;
            }
        }
    }
    if answered == 0 {
        0.0
    } else {
        correct as f32 / answered as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soulmate_linalg::Matrix;

    /// A hand-placed embedding on the unit circle where the relation
    /// "rotate by ~80°" maps 0→1 and 2→3, and words 4/5 sit far away as
    /// distractors.
    fn rotational_embedding() -> Embedding {
        let deg = |d: f32| {
            let r = d.to_radians();
            vec![r.cos(), r.sin()]
        };
        Embedding::from_matrix(
            Matrix::from_rows(&[
                deg(0.0),    // 0: a
                deg(80.0),   // 1: b = rot(a)
                deg(10.0),   // 2: c
                deg(90.0),   // 3: d = rot(c)
                deg(200.0),  // 4: distractor
                deg(-120.0), // 5: distractor
            ])
            .unwrap(),
        )
    }

    #[test]
    fn perfect_embedding_scores_one() {
        let e = rotational_embedding();
        let qs = vec![(0, 1, 2, 3), (2, 3, 0, 1)];
        assert_eq!(evaluate_analogy(&e, &qs), 1.0);
    }

    #[test]
    fn unanswerable_questions_are_skipped() {
        let e = rotational_embedding();
        let qs = vec![(0, 1, 99, 3), (0, 1, 2, 3)];
        // The first question is skipped, the second answered correctly.
        assert_eq!(evaluate_analogy(&e, &qs), 1.0);
    }

    #[test]
    fn empty_set_scores_zero() {
        let e = rotational_embedding();
        assert_eq!(evaluate_analogy(&e, &[]), 0.0);
        assert_eq!(evaluate_analogy(&e, &[(0, 1, 99, 3)]), 0.0);
    }

    #[test]
    fn wrong_expectations_score_zero() {
        let e = rotational_embedding();
        // The 3CosAdd answer is word 3; expecting a distractor scores 0.
        let qs = vec![(0, 1, 2, 4), (0, 1, 2, 5)];
        assert_eq!(evaluate_analogy(&e, &qs), 0.0);
    }

    /// Reference per-query 3CosAdd (the seed's linear scan, norms divided
    /// per candidate) — the batched kernel must answer identically.
    fn reference_analogy(
        e: &Embedding,
        a: soulmate_text::WordId,
        b: soulmate_text::WordId,
        c: soulmate_text::WordId,
    ) -> Option<soulmate_text::WordId> {
        use soulmate_linalg::{dot, l2_norm};
        let n = e.len();
        if [a, b, c].iter().any(|&w| (w as usize) >= n) {
            return None;
        }
        let norm = |w: soulmate_text::WordId| l2_norm(e.vector(w));
        if [a, b, c].iter().any(|&w| norm(w) == 0.0) {
            return None;
        }
        let mut q = vec![0.0f32; e.dim()];
        for (sign, w) in [(1.0f32, b), (-1.0, a), (1.0, c)] {
            let nw = norm(w);
            for (qi, vi) in q.iter_mut().zip(e.vector(w)) {
                *qi += sign * vi / nw;
            }
        }
        let mut best: Option<(soulmate_text::WordId, f32)> = None;
        for cand in 0..n as soulmate_text::WordId {
            if cand == a || cand == b || cand == c || norm(cand) == 0.0 {
                continue;
            }
            let s = dot(e.vector(cand), &q) / norm(cand);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((cand, s));
            }
        }
        best.map(|(w, _)| w)
    }

    #[test]
    fn batched_agrees_with_per_query_reference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use soulmate_linalg::Matrix;
        let mut rng = StdRng::seed_from_u64(20240806);
        let e = Embedding::from_matrix(Matrix::random_uniform(120, 12, 1.0, &mut rng));
        let questions: Vec<(u32, u32, u32)> = (0..60)
            .map(|i| ((i * 7) % 120, (i * 13 + 1) % 120, (i * 29 + 2) % 120))
            .collect();
        let batched = e.analogy_batch(&questions);
        for (qi, &(a, b, c)) in questions.iter().enumerate() {
            assert_eq!(
                batched[qi],
                reference_analogy(&e, a, b, c),
                "question {qi}: ({a}, {b}, {c})"
            );
            // The batch-of-one public path agrees too.
            assert_eq!(batched[qi], e.analogy(a, b, c));
        }
    }

    #[test]
    fn batch_preserves_question_positions() {
        let e = rotational_embedding();
        // Unanswerable questions keep their slots as None.
        let answers = e.analogy_batch(&[(0, 1, 99), (0, 1, 2), (42, 0, 1)]);
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0], None);
        assert_eq!(answers[1], Some(3));
        assert_eq!(answers[2], None);
    }
}
