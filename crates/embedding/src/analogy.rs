//! Word-analogy evaluation (Section 5.2.1, Fig. 8a).
//!
//! Answers *"a is to b as c is to ?"* with 3CosAdd over the embedding and
//! scores accuracy against the expected word. The same accuracy, computed
//! per slab, becomes the Ã weights of the TCBOW fusion (Eqs 6–12).

use crate::embedding::Embedding;
use soulmate_text::WordId;

/// Accuracy of `embedding` on an analogy question set: the fraction of
/// questions where the 3CosAdd answer equals the expected word. Questions
/// whose words fall outside the embedding are skipped (not counted).
/// Returns `0.0` when no question is answerable.
pub fn evaluate_analogy(
    embedding: &Embedding,
    questions: &[(WordId, WordId, WordId, WordId)],
) -> f32 {
    let mut answered = 0usize;
    let mut correct = 0usize;
    for &(a, b, c, expected) in questions {
        match embedding.analogy(a, b, c) {
            Some(got) => {
                answered += 1;
                if got == expected {
                    correct += 1;
                }
            }
            None => continue,
        }
    }
    if answered == 0 {
        0.0
    } else {
        correct as f32 / answered as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soulmate_linalg::Matrix;

    /// A hand-placed embedding on the unit circle where the relation
    /// "rotate by ~80°" maps 0→1 and 2→3, and words 4/5 sit far away as
    /// distractors.
    fn rotational_embedding() -> Embedding {
        let deg = |d: f32| {
            let r = d.to_radians();
            vec![r.cos(), r.sin()]
        };
        Embedding::from_matrix(
            Matrix::from_rows(&[
                deg(0.0),    // 0: a
                deg(80.0),   // 1: b = rot(a)
                deg(10.0),   // 2: c
                deg(90.0),   // 3: d = rot(c)
                deg(200.0),  // 4: distractor
                deg(-120.0), // 5: distractor
            ])
            .unwrap(),
        )
    }

    #[test]
    fn perfect_embedding_scores_one() {
        let e = rotational_embedding();
        let qs = vec![(0, 1, 2, 3), (2, 3, 0, 1)];
        assert_eq!(evaluate_analogy(&e, &qs), 1.0);
    }

    #[test]
    fn unanswerable_questions_are_skipped() {
        let e = rotational_embedding();
        let qs = vec![(0, 1, 99, 3), (0, 1, 2, 3)];
        // The first question is skipped, the second answered correctly.
        assert_eq!(evaluate_analogy(&e, &qs), 1.0);
    }

    #[test]
    fn empty_set_scores_zero() {
        let e = rotational_embedding();
        assert_eq!(evaluate_analogy(&e, &[]), 0.0);
        assert_eq!(evaluate_analogy(&e, &[(0, 1, 99, 3)]), 0.0);
    }

    #[test]
    fn wrong_expectations_score_zero() {
        let e = rotational_embedding();
        // The 3CosAdd answer is word 3; expecting a distractor scores 0.
        let qs = vec![(0, 1, 2, 4), (0, 1, 2, 5)];
        assert_eq!(evaluate_analogy(&e, &qs), 0.0);
    }
}
