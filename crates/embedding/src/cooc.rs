//! Windowed word co-occurrence counting.
//!
//! Both GloVe and the SVD baseline consume co-occurrence statistics; CBOW
//! and skip-gram stream over the corpus directly. Counts are accumulated
//! sparsely (vocabularies are large, windows small) with optional
//! 1/distance weighting (GloVe's convention) and count clamping (the
//! paper's `SVD-15:15000` variant limits pair counts to `[15, 15000]`).

use soulmate_text::WordId;
use std::collections::HashMap;

/// A sparse symmetric co-occurrence matrix.
#[derive(Debug, Clone)]
pub struct CoocMatrix {
    n: usize,
    rows: Vec<HashMap<WordId, f32>>,
    total: f64,
}

impl CoocMatrix {
    /// Count co-occurrences over encoded documents.
    ///
    /// For every token, every neighbour within `window` positions (same
    /// document) is counted. With `distance_weighting` each pair
    /// contributes `1/d` (GloVe); otherwise `1` (SVD/PPMI convention).
    pub fn build(
        docs: &[impl AsRef<[WordId]>],
        vocab_size: usize,
        window: usize,
        distance_weighting: bool,
    ) -> CoocMatrix {
        let mut rows: Vec<HashMap<WordId, f32>> = vec![HashMap::new(); vocab_size];
        let mut total = 0.0f64;
        for doc in docs {
            let words = doc.as_ref();
            for (i, &w) in words.iter().enumerate() {
                // u32 word id → usize is widening; OOV ids are skipped right here
                if (w as usize) >= vocab_size {
                    continue;
                }
                let end = (i + window + 1).min(words.len());
                for (d, &c) in words[i + 1..end].iter().enumerate() {
                    // same widening cast + bound check as the outer word
                    if (c as usize) >= vocab_size {
                        continue;
                    }
                    let weight = if distance_weighting {
                        1.0 / (d + 1) as f32
                    } else {
                        1.0
                    };
                    // in-bounds per the checks above; u32→usize is widening
                    *rows[w as usize].entry(c).or_insert(0.0) += weight;
                    *rows[c as usize].entry(w).or_insert(0.0) += weight; // in-bounds per the checks above
                    total += 2.0 * weight as f64;
                }
            }
        }
        CoocMatrix {
            n: vocab_size,
            rows,
            total,
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no co-occurrences were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Co-occurrence weight of an ordered pair (symmetric by construction).
    pub fn get(&self, i: WordId, j: WordId) -> f32 {
        self.rows
            // u32 word id → usize is widening; .get handles out-of-range
            .get(i as usize)
            .and_then(|r| r.get(&j))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total accumulated weight (both directions).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Marginal (row sum) of word `i`.
    pub fn row_sum(&self, i: WordId) -> f32 {
        self.rows
            // u32 word id → usize is widening; .get handles out-of-range
            .get(i as usize)
            .map(|r| r.values().sum())
            .unwrap_or(0.0)
    }

    /// Number of non-zero pairs (ordered).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Iterate all ordered `(i, j, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, WordId, f32)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.iter().map(move |(&j, &w)| (i as WordId, j, w)))
    }

    /// Clamp pair counts into `[min, max]`: pairs below `min` are dropped,
    /// counts above `max` are capped — the paper's `SVD-15:15000` recipe
    /// for taming noisy microblog co-occurrences.
    pub fn clamped(&self, min: f32, max: f32) -> CoocMatrix {
        let mut rows: Vec<HashMap<WordId, f32>> = vec![HashMap::new(); self.n];
        let mut total = 0.0f64;
        for (i, row) in self.rows.iter().enumerate() {
            for (&j, &w) in row {
                if w >= min {
                    let capped = w.min(max);
                    rows[i].insert(j, capped);
                    total += capped as f64;
                }
            }
        }
        CoocMatrix {
            n: self.n,
            rows,
            total,
        }
    }

    /// Sparse positive pointwise mutual information matrix in CSR form —
    /// the scalable counterpart of [`CoocMatrix::to_ppmi`] (PPMI keeps the
    /// co-occurrence sparsity pattern, so nnz ≪ |V|²).
    pub fn to_ppmi_sparse(&self) -> soulmate_linalg::SparseMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        if self.total > 0.0 {
            let sums: Vec<f64> = (0..self.n)
                .map(|i| self.row_sum(i as WordId) as f64)
                .collect();
            for (i, row) in self.rows.iter().enumerate() {
                for (&j, &w) in row {
                    // u32 word id → usize is widening
                    let denom = sums[i] * sums[j as usize];
                    if denom > 0.0 {
                        let pmi = ((w as f64 * self.total) / denom).ln();
                        if pmi > 0.0 {
                            triplets.push((i, j as usize, pmi as f32)); // u32→usize widening
                        }
                    }
                }
            }
        }
        soulmate_linalg::SparseMatrix::from_triplets(self.n, self.n, triplets)
            .expect("triplets within shape by construction")
    }

    /// Dense positive pointwise mutual information matrix:
    /// `PPMI[i][j] = max(0, ln(x_ij * total / (sum_i * sum_j)))`.
    pub fn to_ppmi(&self) -> soulmate_linalg::Matrix {
        let mut m = soulmate_linalg::Matrix::zeros(self.n, self.n);
        if self.total == 0.0 {
            return m;
        }
        let sums: Vec<f64> = (0..self.n)
            .map(|i| self.row_sum(i as WordId) as f64)
            .collect();
        for (i, row) in self.rows.iter().enumerate() {
            for (&j, &w) in row {
                // u32 word id → usize is widening
                let denom = sums[i] * sums[j as usize];
                if denom > 0.0 {
                    let pmi = ((w as f64 * self.total) / denom).ln();
                    if pmi > 0.0 {
                        m.set(i, j as usize, pmi as f32); // u32→usize widening
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(raw: &[&[WordId]]) -> Vec<Vec<WordId>> {
        raw.iter().map(|d| d.to_vec()).collect()
    }

    #[test]
    fn counts_adjacent_pairs() {
        let d = docs(&[&[0, 1, 2]]);
        let c = CoocMatrix::build(&d, 3, 1, false);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(1, 2), 1.0);
        assert_eq!(c.get(0, 2), 0.0); // distance 2 > window 1
    }

    #[test]
    fn window_reaches_further() {
        let d = docs(&[&[0, 1, 2]]);
        let c = CoocMatrix::build(&d, 3, 2, false);
        assert_eq!(c.get(0, 2), 1.0);
    }

    #[test]
    fn distance_weighting_halves_far_pairs() {
        let d = docs(&[&[0, 1, 2]]);
        let c = CoocMatrix::build(&d, 3, 2, true);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(0, 2), 0.5);
    }

    #[test]
    fn documents_do_not_leak_context() {
        let d = docs(&[&[0], &[1]]);
        let c = CoocMatrix::build(&d, 2, 5, false);
        assert_eq!(c.get(0, 1), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn repeated_pairs_accumulate() {
        let d = docs(&[&[0, 1], &[0, 1], &[1, 0]]);
        let c = CoocMatrix::build(&d, 2, 1, false);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.total(), 6.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn out_of_vocab_ids_skipped() {
        let d = docs(&[&[0, 9, 1]]);
        let c = CoocMatrix::build(&d, 2, 2, false);
        assert_eq!(c.get(0, 9), 0.0);
        assert_eq!(c.get(0, 1), 1.0); // distance 2 within window
    }

    #[test]
    fn clamped_drops_rare_and_caps_frequent() {
        let d = docs(&[&[0, 1], &[0, 1], &[0, 1], &[0, 2]]);
        let c = CoocMatrix::build(&d, 3, 1, false);
        let k = c.clamped(2.0, 2.5);
        assert_eq!(k.get(0, 1), 2.5); // capped from 3
        assert_eq!(k.get(0, 2), 0.0); // dropped (1 < 2)
    }

    #[test]
    fn row_sum_is_marginal() {
        let d = docs(&[&[0, 1, 2]]);
        let c = CoocMatrix::build(&d, 3, 2, false);
        assert_eq!(c.row_sum(1), 2.0);
        assert_eq!(c.row_sum(0), 2.0);
    }

    #[test]
    fn ppmi_positive_for_strong_pairs_zero_for_absent() {
        // 0 and 1 always together; 2 and 3 always together; never crossed.
        let d = docs(&[&[0, 1], &[0, 1], &[2, 3], &[2, 3]]);
        let c = CoocMatrix::build(&d, 4, 1, false);
        let ppmi = c.to_ppmi();
        assert!(ppmi.get(0, 1) > 0.0);
        assert_eq!(ppmi.get(0, 2), 0.0);
        // Symmetric.
        assert!((ppmi.get(0, 1) - ppmi.get(1, 0)).abs() < 1e-6);
    }

    #[test]
    fn sparse_ppmi_matches_dense() {
        let d = docs(&[&[0, 1], &[0, 1], &[2, 3], &[2, 3], &[1, 2]]);
        let c = CoocMatrix::build(&d, 4, 1, false);
        let dense = c.to_ppmi();
        let sparse = c.to_ppmi_sparse();
        assert_eq!(sparse.rows(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (dense.get(i, j) - sparse.get(i, j)).abs() < 1e-6,
                    "mismatch at ({i},{j})"
                );
            }
        }
        // Sparsity preserved: zero-PMI and absent pairs are not stored.
        assert!(sparse.nnz() <= c.nnz());
    }

    #[test]
    fn iter_covers_all_pairs() {
        let d = docs(&[&[0, 1, 2]]);
        let c = CoocMatrix::build(&d, 3, 1, false);
        let triples: Vec<_> = c.iter().collect();
        assert_eq!(triples.len(), c.nnz());
        let sum: f32 = triples.iter().map(|&(_, _, w)| w).sum();
        assert!((sum as f64 - c.total()).abs() < 1e-6);
    }
}
