//! Skip-gram with negative sampling (Mikolov et al. 2013).
//!
//! The inverse of CBOW: each center word predicts its surrounding context
//! words. Shares the unigram table and SGNS update with the CBOW module.

use crate::cbow::UnigramTable;
use crate::embedding::Embedding;
use crate::error::EmbeddingError;
use rand::Rng;
use soulmate_linalg::{axpy, dot, Matrix};
use soulmate_text::WordId;

/// Skip-gram hyper-parameters.
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Maximum context window on each side.
    pub window: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// Negative samples per (center, context) pair.
    pub negative: usize,
    /// Frequent-word subsampling threshold `t` (see
    /// [`crate::cbow::CbowConfig::subsample`]); `None` disables it.
    pub subsample: Option<f32>,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 50,
            window: 4,
            epochs: 5,
            lr: 0.025,
            negative: 5,
            subsample: None,
        }
    }
}

/// Train skip-gram over encoded documents; returns the input-matrix
/// embedding.
///
/// # Errors
/// Same conditions as [`crate::train_cbow`].
pub fn train_skipgram<R: Rng>(
    docs: &[impl AsRef<[WordId]>],
    vocab_size: usize,
    config: &SkipGramConfig,
    rng: &mut R,
) -> Result<Embedding, EmbeddingError> {
    if vocab_size == 0 {
        return Err(EmbeddingError::EmptyVocabulary);
    }
    if config.dim == 0 || config.window == 0 || config.epochs == 0 {
        return Err(EmbeddingError::InvalidConfig(
            "dim, window and epochs must be > 0",
        ));
    }
    if config.lr.is_nan() || config.lr <= 0.0 || config.negative == 0 {
        return Err(EmbeddingError::InvalidConfig(
            "lr must be positive and negative >= 1",
        ));
    }
    if let Some(t) = config.subsample {
        if t.is_nan() || t <= 0.0 {
            return Err(EmbeddingError::InvalidConfig(
                "subsample threshold must be positive",
            ));
        }
    }
    if docs.iter().all(|d| d.as_ref().len() < 2) {
        return Err(EmbeddingError::EmptyCorpus);
    }

    let dim = config.dim;
    let mut input = Matrix::random_uniform(vocab_size, dim, 0.5 / dim as f32, rng);
    let mut output = Matrix::zeros(vocab_size, dim);
    let unigram = UnigramTable::build(docs, vocab_size);
    let total_targets: usize =
        docs.iter().map(|d| d.as_ref().len()).sum::<usize>().max(1) * config.epochs;
    let min_lr = config.lr * 1e-4;

    let keep_prob = config
        .subsample
        .map(|t| crate::cbow::keep_probabilities(docs, vocab_size, t));
    let mut e = vec![0.0f32; dim];
    let mut filtered: Vec<WordId> = Vec::new();
    let mut seen = 0usize;
    for _ in 0..config.epochs {
        for doc in docs {
            let words: &[WordId] = match &keep_prob {
                Some(kp) => {
                    filtered.clear();
                    filtered.extend(
                        doc.as_ref()
                            .iter()
                            // u32 word id → usize is widening (usize ≥ 32 bits on supported targets)
                            .filter(|&&w| rng.gen_range(0.0f32..1.0) < kp[w as usize])
                            .copied(),
                    );
                    &filtered
                }
                None => doc.as_ref(),
            };
            if words.len() < 2 {
                seen += words.len();
                continue;
            }
            for t in 0..words.len() {
                seen += 1;
                let lr = (config.lr * (1.0 - seen as f32 / total_targets as f32)).max(min_lr);
                let b = rng.gen_range(1..=config.window);
                let lo = t.saturating_sub(b);
                let hi = (t + b + 1).min(words.len());
                // u32 word id → usize is widening
                let center = words[t] as usize;
                for (off, &ctx) in words[lo..hi].iter().enumerate() {
                    if lo + off == t {
                        continue;
                    }
                    // Predict ctx from center: SGNS on (center, ctx).
                    e.iter_mut().for_each(|x| *x = 0.0);
                    sgns_pair(
                        // u32 word id → usize is widening
                        ctx as usize,
                        1.0,
                        lr,
                        input.row(center),
                        &mut e,
                        &mut output,
                    );
                    for _ in 0..config.negative {
                        let noise = unigram.sample(rng);
                        // u32 word id → usize is widening
                        if noise == ctx as usize {
                            continue;
                        }
                        sgns_pair(noise, 0.0, lr, input.row(center), &mut e, &mut output);
                    }
                    axpy(1.0, &e, input.row_mut(center));
                }
            }
        }
    }
    Ok(Embedding::from_matrix(input))
}

#[inline]
fn sgns_pair(word: usize, label: f32, lr: f32, v: &[f32], e: &mut [f32], output: &mut Matrix) {
    let row = output.row(word);
    let x = dot(row, v);
    let f = if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    };
    let g = lr * (label - f);
    axpy(g, row, e);
    axpy(g, v, output.row_mut(word));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clique_docs(n: usize) -> Vec<Vec<WordId>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 2]
                } else {
                    vec![3, 4, 5, 3, 4, 5]
                }
            })
            .collect()
    }

    #[test]
    fn separates_cliques() {
        let docs = clique_docs(200);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SkipGramConfig {
            dim: 16,
            window: 3,
            epochs: 8,
            lr: 0.05,
            negative: 5,
            subsample: None,
        };
        let e = train_skipgram(&docs, 6, &cfg, &mut rng).unwrap();
        let intra = (e.cosine(0, 1) + e.cosine(3, 4)) / 2.0;
        let inter = (e.cosine(0, 3) + e.cosine(2, 5)) / 2.0;
        assert!(intra > inter + 0.3, "intra={intra} inter={inter}");
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = clique_docs(10);
        let cfg = SkipGramConfig {
            epochs: 2,
            ..Default::default()
        };
        let a = train_skipgram(&docs, 6, &cfg, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = train_skipgram(&docs, 6, &cfg, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }

    #[test]
    fn rejects_bad_config_and_empty_corpus() {
        let docs = clique_docs(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_skipgram(&docs, 0, &SkipGramConfig::default(), &mut rng).is_err());
        assert!(train_skipgram(
            &docs,
            6,
            &SkipGramConfig {
                negative: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        let empty: Vec<Vec<WordId>> = vec![vec![0]];
        assert!(matches!(
            train_skipgram(&empty, 6, &SkipGramConfig::default(), &mut rng),
            Err(EmbeddingError::EmptyCorpus)
        ));
    }

    #[test]
    fn subsampling_variant_trains() {
        let docs = clique_docs(50);
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 3,
            subsample: Some(1e-2),
            ..Default::default()
        };
        let e = train_skipgram(&docs, 6, &cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
        assert!(train_skipgram(
            &docs,
            6,
            &SkipGramConfig {
                subsample: Some(-1.0),
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(3)
        )
        .is_err());
    }

    #[test]
    fn vectors_are_finite() {
        let docs = clique_docs(20);
        let mut rng = StdRng::seed_from_u64(2);
        let e = train_skipgram(&docs, 6, &SkipGramConfig::default(), &mut rng).unwrap();
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
    }
}
