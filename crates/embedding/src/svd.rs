//! The SVD embedding baseline (Section 4.1.2).
//!
//! "SVD computes the word vectors without training and using matrix
//! operations over the co-occurrence matrix": we form the PPMI matrix
//! (optionally count-clamped, the paper's `SVD-15:15000` variant) and take
//! the truncated SVD, embedding word `i` as row `i` of `U·√Σ`.

use crate::cooc::CoocMatrix;
use crate::embedding::Embedding;
use crate::error::EmbeddingError;
use rand::Rng;
use soulmate_linalg::{truncated_svd, truncated_svd_sparse};

/// SVD baseline hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvdConfig {
    /// Embedding dimensionality (SVD rank).
    pub dim: usize,
    /// Co-occurrence window (used when the caller builds the matrix).
    pub window: usize,
    /// Optional `(min, max)` pair-count clamp — `Some((15.0, 15000.0))`
    /// reproduces the paper's `SVD-15:15000`.
    pub clamp: Option<(f32, f32)>,
    /// Randomized-SVD oversampling.
    pub oversample: usize,
    /// Randomized-SVD power iterations.
    pub power_iters: usize,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            dim: 50,
            window: 4,
            clamp: None,
            oversample: 8,
            power_iters: 2,
        }
    }
}

/// Vocabulary size beyond which the PPMI matrix is factorized through the
/// sparse CSR path (a dense |V|² buffer at the paper's 305 K vocabulary
/// would need ~372 GB; the sparse path is O(nnz)).
pub const SPARSE_SVD_THRESHOLD: usize = 4096;

/// Factorize a co-occurrence matrix into an SVD embedding.
///
/// Uses the dense PPMI pipeline below [`SPARSE_SVD_THRESHOLD`] words and
/// the CSR pipeline above it (same algorithm; results differ only by
/// floating-point summation order).
///
/// # Errors
/// [`EmbeddingError::EmptyCorpus`] for an empty matrix,
/// [`EmbeddingError::InvalidConfig`] when `dim` is 0 or exceeds the
/// vocabulary size.
pub fn train_svd<R: Rng>(
    cooc: &CoocMatrix,
    config: &SvdConfig,
    rng: &mut R,
) -> Result<Embedding, EmbeddingError> {
    if cooc.is_empty() {
        return Err(EmbeddingError::EmptyCorpus);
    }
    if config.dim == 0 || config.dim > cooc.len() {
        return Err(EmbeddingError::InvalidConfig(
            "dim must be in 1..=vocab_size",
        ));
    }
    let clamped;
    let source = match config.clamp {
        Some((min, max)) => {
            clamped = cooc.clamped(min, max);
            if clamped.is_empty() {
                return Err(EmbeddingError::EmptyCorpus);
            }
            &clamped
        }
        None => cooc,
    };
    let svd = if source.len() > SPARSE_SVD_THRESHOLD {
        let ppmi = source.to_ppmi_sparse();
        truncated_svd_sparse(
            &ppmi,
            config.dim,
            config.oversample,
            config.power_iters,
            rng,
        )
    } else {
        let ppmi = source.to_ppmi();
        truncated_svd(
            &ppmi,
            config.dim,
            config.oversample,
            config.power_iters,
            rng,
        )
    }
    .map_err(|_| EmbeddingError::InvalidConfig("svd rank out of range"))?;
    Ok(Embedding::from_matrix(svd.scaled_u()))
}

/// Force the sparse CSR factorization regardless of vocabulary size
/// (exposed for tests and for callers that know their matrix is huge).
///
/// # Errors
/// Same conditions as [`train_svd`].
pub fn train_svd_sparse<R: Rng>(
    cooc: &CoocMatrix,
    config: &SvdConfig,
    rng: &mut R,
) -> Result<Embedding, EmbeddingError> {
    if cooc.is_empty() {
        return Err(EmbeddingError::EmptyCorpus);
    }
    if config.dim == 0 || config.dim > cooc.len() {
        return Err(EmbeddingError::InvalidConfig(
            "dim must be in 1..=vocab_size",
        ));
    }
    let clamped;
    let source = match config.clamp {
        Some((min, max)) => {
            clamped = cooc.clamped(min, max);
            if clamped.is_empty() {
                return Err(EmbeddingError::EmptyCorpus);
            }
            &clamped
        }
        None => cooc,
    };
    let ppmi = source.to_ppmi_sparse();
    let svd = truncated_svd_sparse(
        &ppmi,
        config.dim,
        config.oversample,
        config.power_iters,
        rng,
    )
    .map_err(|_| EmbeddingError::InvalidConfig("svd rank out of range"))?;
    Ok(Embedding::from_matrix(svd.scaled_u()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soulmate_text::WordId;

    fn clique_cooc() -> CoocMatrix {
        let docs: Vec<Vec<WordId>> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 2]
                } else {
                    vec![3, 4, 5, 3, 4, 5]
                }
            })
            .collect();
        CoocMatrix::build(&docs, 6, 3, false)
    }

    #[test]
    fn separates_cliques_without_training() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SvdConfig {
            dim: 3,
            ..Default::default()
        };
        let e = train_svd(&cooc, &cfg, &mut rng).unwrap();
        let intra = (e.cosine(0, 1) + e.cosine(3, 4)) / 2.0;
        let inter = (e.cosine(0, 3) + e.cosine(2, 5)) / 2.0;
        assert!(intra > inter + 0.3, "intra={intra} inter={inter}");
    }

    #[test]
    fn clamping_changes_the_embedding() {
        let cooc = clique_cooc();
        let cfg_plain = SvdConfig {
            dim: 3,
            ..Default::default()
        };
        let cfg_clamped = SvdConfig {
            dim: 3,
            clamp: Some((1.0, 10.0)),
            ..Default::default()
        };
        let a = train_svd(&cooc, &cfg_plain, &mut StdRng::seed_from_u64(2)).unwrap();
        let b = train_svd(&cooc, &cfg_clamped, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(a.matrix().as_slice(), b.matrix().as_slice());
    }

    #[test]
    fn rejects_empty_and_bad_dim() {
        let empty = CoocMatrix::build(&Vec::<Vec<WordId>>::new(), 4, 2, false);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_svd(&empty, &SvdConfig::default(), &mut rng).is_err());
        let cooc = clique_cooc();
        assert!(train_svd(
            &cooc,
            &SvdConfig {
                dim: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(train_svd(
            &cooc,
            &SvdConfig {
                dim: 99,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn aggressive_clamp_that_drops_everything_errors() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SvdConfig {
            dim: 2,
            clamp: Some((1e9, 2e9)),
            ..Default::default()
        };
        assert!(matches!(
            train_svd(&cooc, &cfg, &mut rng),
            Err(EmbeddingError::EmptyCorpus)
        ));
    }

    #[test]
    fn sparse_path_separates_cliques_too() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SvdConfig {
            dim: 3,
            ..Default::default()
        };
        let e = train_svd_sparse(&cooc, &cfg, &mut rng).unwrap();
        let intra = (e.cosine(0, 1) + e.cosine(3, 4)) / 2.0;
        let inter = (e.cosine(0, 3) + e.cosine(2, 5)) / 2.0;
        assert!(intra > inter + 0.3, "intra={intra} inter={inter}");
        assert!(train_svd_sparse(
            &cooc,
            &SvdConfig {
                dim: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn embedding_shape_and_finiteness() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(3);
        let e = train_svd(
            &cooc,
            &SvdConfig {
                dim: 4,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(e.len(), 6);
        assert_eq!(e.dim(), 4);
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
    }
}
