//! Error type for embedding training.

use std::fmt;

/// Errors raised by embedding trainers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// The training corpus contained no usable tokens.
    EmptyCorpus,
    /// The vocabulary was empty.
    EmptyVocabulary,
    /// A configuration value was out of range.
    InvalidConfig(&'static str),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::EmptyCorpus => write!(f, "training corpus is empty"),
            EmbeddingError::EmptyVocabulary => write!(f, "vocabulary is empty"),
            EmbeddingError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for EmbeddingError {}
