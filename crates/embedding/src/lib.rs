//! Word embedding models for the SoulMate reproduction — every model the
//! paper compares in Section 4.1.2 / Fig. 8, implemented from scratch:
//!
//! * [`svd`] — PPMI + truncated SVD over the co-occurrence matrix (the
//!   training-free baseline, including the paper's `SVD-15:15000` count
//!   clamping variant);
//! * [`cbow`] — continuous bag-of-words with negative sampling *and* an
//!   exact full-softmax mode (the paper's Eqs 2–4), the winning model that
//!   TCBOW builds on;
//! * [`skipgram`] — skip-gram with negative sampling;
//! * [`glove`] — weighted-least-squares co-occurrence factorization with
//!   AdaGrad;
//! * [`analogy`] — the 3CosAdd word-analogy evaluation used both to rank
//!   models (Fig. 8a) and to weight slabs inside TCBOW (Ã in Eqs 6–12).
//!
//! All models produce a common [`Embedding`], which implements
//! [`soulmate_text::SimilarWords`] so enrichment baselines can consume any
//! of them interchangeably.

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]
// Index-based loops are used deliberately where two mirrored cells of a
// symmetric matrix (or several parallel arrays) are written per step —
// iterator rewrites obscure those invariants.
#![allow(clippy::needless_range_loop)]

pub mod analogy;
pub mod cbow;
pub mod cooc;
pub mod embedding;
pub mod error;
pub mod glove;
pub mod skipgram;
pub mod svd;

pub use analogy::evaluate_analogy;
pub use cbow::{train_cbow, train_cbow_parallel, CbowConfig, SoftmaxMode};
pub use cooc::CoocMatrix;
pub use embedding::Embedding;
pub use error::EmbeddingError;
pub use glove::{train_glove, GloveConfig};
pub use skipgram::{train_skipgram, SkipGramConfig};
pub use svd::{train_svd, train_svd_sparse, SvdConfig};
