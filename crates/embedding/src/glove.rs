//! GloVe: global vectors from weighted least-squares co-occurrence
//! factorization (Pennington et al. 2014).
//!
//! Minimizes `Σ f(x_ij) (wᵢ·w̃ⱼ + bᵢ + b̃ⱼ − ln x_ij)²` with AdaGrad, where
//! `f(x) = (x / x_max)^α` capped at 1. The paper's `GloVe-30` variant is
//! just `epochs = 30`.

use crate::cooc::CoocMatrix;
use crate::embedding::Embedding;
use crate::error::EmbeddingError;
use rand::seq::SliceRandom;
use rand::Rng;
use soulmate_linalg::{dot, Matrix};
use soulmate_text::WordId;

/// GloVe hyper-parameters.
#[derive(Debug, Clone)]
pub struct GloveConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Co-occurrence window used when building the matrix.
    pub window: usize,
    /// Training epochs over the non-zero pairs (the paper sweeps 30/50/100).
    pub epochs: usize,
    /// AdaGrad initial learning rate.
    pub lr: f32,
    /// Weighting cap `x_max`.
    pub x_max: f32,
    /// Weighting exponent `α`.
    pub alpha: f32,
}

impl Default for GloveConfig {
    fn default() -> Self {
        GloveConfig {
            dim: 50,
            window: 4,
            epochs: 30,
            lr: 0.05,
            x_max: 100.0,
            alpha: 0.75,
        }
    }
}

/// Train GloVe from a prebuilt co-occurrence matrix.
///
/// The final embedding is `W + W̃` (the paper's summed main+context
/// convention).
///
/// # Errors
/// [`EmbeddingError::EmptyCorpus`] when the matrix has no non-zero pairs;
/// [`EmbeddingError::InvalidConfig`] for out-of-range hyper-parameters.
pub fn train_glove<R: Rng>(
    cooc: &CoocMatrix,
    config: &GloveConfig,
    rng: &mut R,
) -> Result<Embedding, EmbeddingError> {
    if config.dim == 0 || config.epochs == 0 {
        return Err(EmbeddingError::InvalidConfig("dim and epochs must be > 0"));
    }
    if config.lr.is_nan() || config.lr <= 0.0 || config.x_max.is_nan() || config.x_max <= 0.0 {
        return Err(EmbeddingError::InvalidConfig(
            "lr and x_max must be positive",
        ));
    }
    if cooc.is_empty() {
        return Err(EmbeddingError::EmptyCorpus);
    }

    let n = cooc.len();
    let dim = config.dim;
    let mut w = Matrix::random_uniform(n, dim, 0.5 / dim as f32, rng);
    let mut wt = Matrix::random_uniform(n, dim, 0.5 / dim as f32, rng);
    let mut b = vec![0.0f32; n];
    let mut bt = vec![0.0f32; n];
    // AdaGrad accumulators start at 1 (the reference implementation's
    // epsilon-free convention).
    let mut gw = Matrix::from_vec(n, dim, vec![1.0; n * dim]).expect("shape");
    let mut gwt = gw.clone();
    let mut gb = vec![1.0f32; n];
    let mut gbt = vec![1.0f32; n];

    let mut pairs: Vec<(WordId, WordId, f32)> = cooc.iter().collect();

    for _ in 0..config.epochs {
        pairs.shuffle(rng);
        for &(i, j, x) in &pairs {
            // u32 word ids → usize is widening
            let (i, j) = (i as usize, j as usize);
            let weight = (x / config.x_max).powf(config.alpha).min(1.0);
            let diff = dot(w.row(i), wt.row(j)) + b[i] + bt[j] - x.ln();
            let fdiff = weight * diff;
            // Gradients: d/dw_i = fdiff * w̃_j, etc.
            for d in 0..dim {
                let gi = fdiff * wt.get(j, d);
                let gj = fdiff * w.get(i, d);
                let wi = w.get(i, d) - config.lr * gi / gw.get(i, d).sqrt();
                let wj = wt.get(j, d) - config.lr * gj / gwt.get(j, d).sqrt();
                w.set(i, d, wi);
                wt.set(j, d, wj);
                gw.set(i, d, gw.get(i, d) + gi * gi);
                gwt.set(j, d, gwt.get(j, d) + gj * gj);
            }
            b[i] -= config.lr * fdiff / gb[i].sqrt();
            bt[j] -= config.lr * fdiff / gbt[j].sqrt();
            gb[i] += fdiff * fdiff;
            gbt[j] += fdiff * fdiff;
        }
    }

    // Final vectors: W + W̃.
    let mut combined = Matrix::zeros(n, dim);
    for i in 0..n {
        for d in 0..dim {
            combined.set(i, d, w.get(i, d) + wt.get(i, d));
        }
    }
    Ok(Embedding::from_matrix(combined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clique_cooc() -> CoocMatrix {
        let docs: Vec<Vec<WordId>> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    vec![0, 1, 2, 0, 1, 2]
                } else {
                    vec![3, 4, 5, 3, 4, 5]
                }
            })
            .collect();
        CoocMatrix::build(&docs, 6, 3, true)
    }

    #[test]
    fn separates_cliques() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GloveConfig {
            dim: 16,
            epochs: 40,
            ..Default::default()
        };
        let e = train_glove(&cooc, &cfg, &mut rng).unwrap();
        let intra = (e.cosine(0, 1) + e.cosine(3, 4)) / 2.0;
        let inter = (e.cosine(0, 3) + e.cosine(2, 5)) / 2.0;
        assert!(intra > inter + 0.2, "intra={intra} inter={inter}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cooc = clique_cooc();
        let cfg = GloveConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = train_glove(&cooc, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = train_glove(&cooc, &cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }

    #[test]
    fn rejects_empty_cooc_and_bad_config() {
        let empty = CoocMatrix::build(&Vec::<Vec<WordId>>::new(), 4, 2, true);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            train_glove(&empty, &GloveConfig::default(), &mut rng),
            Err(EmbeddingError::EmptyCorpus)
        ));
        let cooc = clique_cooc();
        assert!(train_glove(
            &cooc,
            &GloveConfig {
                dim: 0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
        assert!(train_glove(
            &cooc,
            &GloveConfig {
                lr: -1.0,
                ..Default::default()
            },
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn vectors_are_finite() {
        let cooc = clique_cooc();
        let mut rng = StdRng::seed_from_u64(4);
        let e = train_glove(
            &cooc,
            &GloveConfig {
                epochs: 5,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(e.matrix().as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(e.len(), 6);
    }
}
