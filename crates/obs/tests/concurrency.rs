//! Property tests: the registry stays exact under concurrent recording
//! from `std::thread::scope` workers — counter totals are exact, and
//! every histogram's count equals the number of samples recorded.

use proptest::prelude::*;
use soulmate_obs::MetricsRegistry;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_recording_is_exact(threads in 1usize..8, ops in 1usize..200) {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..ops {
                        reg.incr("total.ops", 1);
                        reg.incr(&format!("thread.{t}.ops"), 2);
                        // Integer-valued samples: the histogram sum is
                        // exact regardless of interleaving order.
                        reg.record("latency", (i % 7) as f64);
                        reg.set_gauge("last.i", i as f64);
                    }
                });
            }
        });

        prop_assert_eq!(reg.counter("total.ops"), (threads * ops) as u64);
        for t in 0..threads {
            prop_assert_eq!(reg.counter(&format!("thread.{t}.ops")), (2 * ops) as u64);
        }

        let h = reg.histogram("latency").unwrap();
        prop_assert_eq!(h.count, (threads * ops) as u64);
        let per_thread_sum: u64 = (0..ops).map(|i| (i % 7) as u64).sum();
        prop_assert_eq!(h.sum as u64, threads as u64 * per_thread_sum);
        prop_assert_eq!(h.rejected, 0);

        // The gauge holds one of the written values.
        let g = reg.gauge("last.i").unwrap();
        prop_assert!(g >= 0.0 && g < ops as f64);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(0.0f64..10.0, 1..300)) {
        let reg = MetricsRegistry::new();
        for &s in &samples {
            reg.record("h", s);
        }
        let h = reg.histogram("h").unwrap();
        prop_assert_eq!(h.count, samples.len() as u64);
        // At least one sample was recorded, so every quantile is present.
        let (p50, p95, p99) = (h.p50.unwrap(), h.p95.unwrap(), h.p99.unwrap());
        prop_assert!(h.min <= p50 + 1e-12);
        prop_assert!(p50 <= p95 + 1e-12);
        prop_assert!(p95 <= p99 + 1e-12);
        prop_assert!(p99 <= h.max + 1e-12);
        let true_max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((h.max - true_max).abs() < 1e-12);
    }

    #[test]
    fn json_export_is_valid_under_any_names(names in proptest::collection::vec("[a-z.\"\\\\]{1,12}", 1..10)) {
        let reg = MetricsRegistry::new();
        for (i, name) in names.iter().enumerate() {
            reg.incr(name, i as u64 + 1);
            reg.record(name, i as f64);
        }
        let json = reg.to_json();
        // Minimal structural validity: balanced braces/brackets outside
        // string literals, every name escaped.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc { esc = false; continue; }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
        prop_assert!(!in_str);
    }
}
