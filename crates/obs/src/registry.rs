//! Thread-safe metrics registry: counters, gauges, and latency histograms
//! behind one mutex, keyed by name, with JSON and table export.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges, and log-bucketed
/// histograms.
///
/// All mutation goes through one [`Mutex`]; recording a metric is a lock,
/// a `BTreeMap` lookup, and an add — cheap enough that instrumented call
/// sites batch at most a handful of updates per operation (per Gram call,
/// per query, per fit stage), never per element. `BTreeMap` keeps every
/// export deterministically name-ordered.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding the lock poisons it, but the data is
        // plain counters — always recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `by` to counter `name` (created at zero on first use).
    pub fn incr(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Record one sample into histogram `name`.
    pub fn record(&self, name: &str, v: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Record a wall-time duration (in seconds) into histogram `name`.
    pub fn record_duration(&self, name: &str, d: Duration) {
        self.record(name, d.as_secs_f64());
    }

    /// Time a closure and record its wall time into histogram `name`.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record_duration(name, start.elapsed());
        out
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(Histogram::snapshot)
    }

    /// Every metric name in the registry (counters, gauges, histograms),
    /// sorted and deduplicated.
    pub fn names(&self) -> Vec<String> {
        let inner = self.lock();
        let mut names: Vec<String> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .cloned()
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Drop every metric (tests and benches use this to isolate runs).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Serialize the registry as a JSON object:
    ///
    /// ```json
    /// {
    ///   "counters":   { "name": 42, ... },
    ///   "gauges":     { "name": 1.5, ... },
    ///   "histograms": {
    ///     "name": {
    ///       "count": 10, "rejected": 0, "sum": 0.5,
    ///       "min": 0.01, "max": 0.2, "mean": 0.05,
    ///       "p50": 0.04, "p95": 0.2, "p99": 0.2,
    ///       "buckets": [ { "le": 0.065536, "count": 9 }, ... ]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// Hand-rolled (the crate is zero-dependency); non-finite floats
    /// render as `null` so the output is always valid JSON.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_entries(&mut out, inner.counters.iter(), |s, v| {
            s.push_str(&v.to_string());
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, inner.gauges.iter(), |s, v| {
            s.push_str(&json_f64(*v));
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, inner.histograms.iter(), |s, h| {
            push_histogram(s, &h.snapshot());
        });
        out.push_str("}\n}\n");
        out
    }

    /// Render a fixed-width human-readable table of every metric.
    pub fn render_table(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &inner.counters {
                out.push_str(&format!("  {name:<44} {v:>12}\n"));
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, v) in &inner.gauges {
                out.push_str(&format!("  {name:<44} {v:>12.4}\n"));
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str(&format!(
                "histograms\n  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            ));
            for (name, h) in &inner.histograms {
                let s = h.snapshot();
                out.push_str(&format!(
                    "  {:<44} {:>8} {:>10.6} {:>10} {:>10} {:>10} {:>10.6}\n",
                    name,
                    s.count,
                    s.mean,
                    table_quantile(s.p50),
                    table_quantile(s.p95),
                    table_quantile(s.p99),
                    s.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Write [`MetricsRegistry::to_json`] to `path` atomically: the JSON
    /// goes to a dot-prefixed temp file in the destination directory,
    /// is flushed explicitly, and is renamed over the target only on
    /// success; the temp file is removed on any failure.
    ///
    /// The temp name carries the process id *and* a process-global
    /// sequence number so concurrent dumps to the same path (two threads
    /// of one server) never share a temporary — the same fix as
    /// `PipelineSnapshot::save`'s concurrent-save race.
    pub fn write_json_atomic(&self, path: &Path) -> std::io::Result<()> {
        static DUMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let json = self.to_json();
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
            })?
            .to_string_lossy()
            .into_owned();
        let mut tmp = path.to_path_buf();
        tmp.set_file_name(format!(
            ".{file_name}.tmp-{}-{}",
            std::process::id(),
            DUMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.flush()?;
            std::fs::rename(&tmp, path)
        };
        let result = write();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }
}

/// Append `"key": <value>` pairs, comma-separated, via `emit`.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    emit: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(": ");
        emit(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_histogram(out: &mut String, s: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\": {}, \"rejected\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
         \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        s.count,
        s.rejected,
        json_f64(s.sum),
        json_f64(s.min),
        json_f64(s.max),
        json_f64(s.mean),
        json_opt_f64(s.p50),
        json_opt_f64(s.p95),
        json_opt_f64(s.p99),
    ));
    for (i, (le, count)) in s.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"le\": {}, \"count\": {count}}}",
            json_f64(*le)
        ));
    }
    out.push_str("]}");
}

/// An absent quantile rendered for JSON: `null`, never a fake zero — a
/// fresh histogram has no p99, and consumers must be able to tell "no
/// samples yet" from "all samples were instant".
fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// An absent quantile rendered for the table: `-`, never a fake zero.
fn table_quantile(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.6}"),
        None => "-".to_string(),
    }
}

/// A JSON number, or `null` for non-finite values.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's Display for f64 is round-trip shortest and never emits
        // exponent notation, so the output is always a valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append a JSON string literal with escaping.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // char → u32 is the identity on code points
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.incr("queries", 3);
        reg.incr("queries", 2);
        reg.set_gauge("vocab", 812.0);
        reg.record("latency", 0.001);
        reg.record("latency", 0.002);
        assert_eq!(reg.counter("queries"), 5);
        assert_eq!(reg.gauge("vocab"), Some(812.0));
        let h = reg.histogram("latency").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 0.003).abs() < 1e-12);
        assert_eq!(
            reg.names(),
            vec!["latency".to_string(), "queries".into(), "vocab".into()]
        );
    }

    #[test]
    fn time_records_one_sample_and_returns_value() {
        let reg = MetricsRegistry::new();
        let v = reg.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(reg.histogram("work").unwrap().count, 1);
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let reg = MetricsRegistry::new();
        reg.incr("b.count", 1);
        reg.incr("a.count", 2);
        reg.set_gauge("g", f64::NAN); // must render as null, not NaN
        reg.record("h", 0.5);
        let json = reg.to_json();
        assert!(json.contains("\"a.count\": 2"));
        assert!(json.contains("\"g\": null"));
        assert!(json.contains("\"p50\": 0.5"));
        // Name order is sorted: a.count before b.count.
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
        assert_eq!(json, reg.to_json());
    }

    #[test]
    fn table_renders_every_section() {
        let reg = MetricsRegistry::new();
        reg.incr("c", 1);
        reg.set_gauge("g", 2.0);
        reg.record("h", 0.25);
        let table = reg.render_table();
        assert!(table.contains("counters"));
        assert!(table.contains("gauges"));
        assert!(table.contains("histograms"));
        assert!(table.contains("p95"));
        assert_eq!(
            MetricsRegistry::new().render_table(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn empty_histogram_exports_null_quantiles_not_zero() {
        // Regression: a histogram whose only samples were rejected (NaN)
        // exists in the registry with count 0; its quantiles used to
        // export as a plausible-looking 0 — a fresh server's /metrics
        // showed p99=0 and looked healthy. Absence is now explicit.
        let reg = MetricsRegistry::new();
        reg.record("empty.latency", f64::NAN);
        let h = reg.histogram("empty.latency").unwrap();
        assert_eq!(h.count, 0);
        assert_eq!(h.p99, None);
        let json = reg.to_json();
        assert!(
            json.contains("\"p50\": null, \"p95\": null, \"p99\": null"),
            "{json}"
        );
        let table = reg.render_table();
        let row = table.lines().find(|l| l.contains("empty.latency")).unwrap();
        assert!(row.contains('-'), "{row}");
        // A recorded histogram still exports numeric quantiles.
        reg.record("live.latency", 0.5);
        assert!(reg.to_json().contains("\"p50\": 0.5"));
    }

    #[test]
    fn clear_empties_everything() {
        let reg = MetricsRegistry::new();
        reg.incr("c", 1);
        reg.record("h", 1.0);
        reg.clear();
        assert_eq!(reg.counter("c"), 0);
        assert!(reg.histogram("h").is_none());
        assert!(reg.names().is_empty());
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn atomic_json_dump_writes_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("obs-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let reg = MetricsRegistry::new();
        reg.incr("c", 7);
        reg.write_json_atomic(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"c\": 7"));
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
