//! Scoped stage timers with thread-local nesting.
//!
//! A [`StageTimer`] pushes its name onto a thread-local stage stack on
//! creation and records `stage.<dotted.path>.seconds` into its registry
//! on drop, so nested guards produce hierarchical names without any
//! plumbing:
//!
//! ```
//! use soulmate_obs::{span, MetricsRegistry};
//! let reg = MetricsRegistry::new();
//! {
//!     let _fit = span!(&reg, "fit");
//!     let _enc = span!(&reg, "encode"); // records stage.fit.encode.seconds
//! }
//! assert!(reg.histogram("stage.fit.encode.seconds").is_some());
//! assert!(reg.histogram("stage.fit.seconds").is_some());
//! ```
//!
//! The stack is per-thread: work spawned onto worker threads (per-slab
//! TCBOW training, parallel Gram tiles) starts a fresh path there, so
//! those sites record under explicit fixed names instead (e.g. the
//! `tcbow.slab_train.seconds` histogram).

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STAGE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A scope guard that times a named stage and records it on drop.
///
/// The recorded histogram name is `stage.<path>.seconds` where `<path>`
/// joins every live [`StageTimer`] on this thread with dots, outermost
/// first.
pub struct StageTimer<'a> {
    registry: &'a MetricsRegistry,
    path: String,
    start: Instant,
}

impl<'a> StageTimer<'a> {
    /// Start timing stage `name`, nested under any enclosing timers on
    /// this thread.
    pub fn new(registry: &'a MetricsRegistry, name: &str) -> Self {
        let path = STAGE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_string());
            stack.join(".")
        });
        StageTimer {
            registry,
            path,
            start: Instant::now(),
        }
    }

    /// The dotted path this timer records under (without the
    /// `stage.`/`.seconds` affixes).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        STAGE_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.registry.record(
            &format!("stage.{}.seconds", self.path),
            self.start.elapsed().as_secs_f64(),
        );
    }
}

/// Start a [`StageTimer`] on `registry` — bind it to keep the span open:
/// `let _stage = span!(reg, "fit");`.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::StageTimer::new($registry, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_timers_record_dotted_paths() {
        let reg = MetricsRegistry::new();
        {
            let outer = StageTimer::new(&reg, "fit");
            assert_eq!(outer.path(), "fit");
            {
                let inner = StageTimer::new(&reg, "tcbow");
                assert_eq!(inner.path(), "fit.tcbow");
            }
            // Sibling after the inner timer dropped: still nests under fit.
            let sib = StageTimer::new(&reg, "concepts");
            assert_eq!(sib.path(), "fit.concepts");
        }
        for name in [
            "stage.fit.seconds",
            "stage.fit.tcbow.seconds",
            "stage.fit.concepts.seconds",
        ] {
            let h = reg
                .histogram(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(h.count, 1, "{name}");
        }
    }

    #[test]
    fn stack_unwinds_even_on_panic() {
        let reg = MetricsRegistry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _t = StageTimer::new(&reg, "doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        // The stack is clean: a fresh timer is top-level again.
        let t = StageTimer::new(&reg, "after");
        assert_eq!(t.path(), "after");
    }

    #[test]
    fn threads_get_independent_stacks() {
        let reg = MetricsRegistry::new();
        let _outer = StageTimer::new(&reg, "main");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let t = StageTimer::new(&reg, "worker");
                // Not nested under "main": that guard lives on another thread.
                assert_eq!(t.path(), "worker");
            });
        });
    }
}
