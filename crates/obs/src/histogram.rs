//! Log-bucketed histogram with approximate quantiles.
//!
//! Values double per bucket starting from [`BASE`] (1 µs when recording
//! seconds), so 64 buckets span twelve orders of magnitude with a fixed
//! ~2× relative error bound on quantile estimates — the classic
//! HDR-style layout, reduced to what latency reporting needs.

/// Smallest resolvable value: bucket 0 is `[0, BASE]`.
pub const BASE: f64 = 1e-6;

/// Number of buckets; bucket `i >= 1` covers `(BASE·2^(i-1), BASE·2^i]`.
pub const N_BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed histogram of non-negative `f64` samples.
///
/// NaN samples are dropped (counted in [`Histogram::rejected`]); negative
/// samples clamp to zero. Exact `count`/`sum`/`min`/`max` are tracked
/// alongside the buckets, so means are exact and quantile estimates are
/// clamped into `[min, max]` (a single-sample histogram reports that
/// sample for every quantile).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    rejected: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; N_BUCKETS],
            count: 0,
            rejected: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= BASE {
            0
        } else {
            // v > BASE here, so the log is positive and tiny; min() clamps the bucket
            let idx = (v / BASE).log2().ceil() as usize;
            idx.min(N_BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `i`.
    fn upper_bound(i: usize) -> f64 {
        BASE * (i as f64).exp2()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.rejected += 1;
            return;
        }
        let v = v.max(0.0);
        // `bucket_index` clamps to `N_BUCKETS - 1`, so the lookup always
        // succeeds; `get_mut` keeps the path panic-free by construction.
        if let Some(c) = self.counts.get_mut(Self::bucket_index(v)) {
            *c += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.rejected += other.rejected;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded (accepted) samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN samples dropped.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sum of all accepted samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of accepted samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th sample, clamped into `[min, max]`.
    ///
    /// `None` when the histogram is empty — an empty histogram has no
    /// quantiles, and reporting a plausible-looking `0.0` instead made a
    /// freshly started server's p99 look healthy when nothing had been
    /// served at all.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(Self::upper_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Point-in-time summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        HistogramSnapshot {
            count: self.count,
            rejected: self.rejected,
            sum: self.sum,
            min,
            max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Self::upper_bound(i), c))
                .collect(),
        }
    }
}

/// An immutable summary of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Accepted samples.
    pub count: u64,
    /// Dropped NaN samples.
    pub rejected: u64,
    /// Sum of accepted samples.
    pub sum: f64,
    /// Smallest accepted sample (0.0 when empty).
    pub min: f64,
    /// Largest accepted sample (0.0 when empty).
    pub max: f64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Approximate median; `None` when no sample was recorded.
    pub p50: Option<f64>,
    /// Approximate 95th percentile; `None` when no sample was recorded.
    pub p95: Option<f64>,
    /// Approximate 99th percentile; `None` when no sample was recorded.
    pub p99: Option<f64>,
    /// `(bucket_upper_bound, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(f64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        // Regression: empty quantiles used to report 0.0, which made a
        // freshly started server's /metrics p99 look healthy; absence is
        // now explicit.
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, None);
        assert_eq!(s.p95, None);
        assert_eq!(s.p99, None);
        assert_eq!(h.quantile(0.5), None);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(0.0123);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, Some(0.0123));
        assert_eq!(s.p99, Some(0.0123));
        assert_eq!(s.mean, 0.0123);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let mut h = Histogram::new();
        // 90 fast samples at 1ms, 10 slow at 1s.
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let (p50, p95, p99) = (s.p50.unwrap(), s.p95.unwrap(), s.p99.unwrap());
        // p50 lands in the 1ms bucket (≤ 2x relative error).
        assert!(p50 >= 1e-3 && p50 <= 2.1e-3, "p50 = {p50}");
        // p95 and p99 land in the 1s region.
        assert!(p95 >= 0.5 && p95 <= 1.0, "p95 = {p95}");
        assert!(p99 >= 0.5 && p99 <= 1.0, "p99 = {p99}");
    }

    #[test]
    fn nan_is_rejected_and_negative_clamps() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-3.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn merge_preserves_totals() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..50 {
            a.record(i as f64 * 1e-4);
            b.record(i as f64 * 1e-2);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert!((merged.sum() - (a.sum() + b.sum())).abs() < 1e-12);
    }

    #[test]
    fn huge_values_saturate_last_bucket() {
        let mut h = Histogram::new();
        h.record(1e30);
        h.record(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.len(), 1);
    }
}
