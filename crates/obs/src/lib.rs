//! # soulmate-obs
//!
//! Zero-dependency observability for the SoulMate pipeline: a
//! thread-safe [`MetricsRegistry`] of counters, gauges, and log-bucketed
//! latency histograms (p50/p95/p99), plus a scoped [`StageTimer`] /
//! [`span!`] guard that times named stages with thread-local nesting.
//!
//! The crate sits *below* `soulmate-linalg` in the workspace graph and
//! depends on nothing but `std`, so every layer — Gram kernels, fit
//! stages, the online serving path — records into the same process-wide
//! registry ([`global`]) without dependency cycles.
//!
//! Export is JSON ([`MetricsRegistry::to_json`], also written atomically
//! by [`MetricsRegistry::write_json_atomic`]) or a fixed-width table
//! ([`MetricsRegistry::render_table`]); the CLI surfaces both as
//! `soulmate stats` and the `--metrics <path>` flag. See DESIGN.md §11
//! for the schema, the stage-name inventory, and the bucket layout.
//!
//! ```
//! use soulmate_obs::{global, span};
//!
//! let reg = global();
//! {
//!     let _stage = span!(reg, "demo");
//!     reg.incr("demo.items", 3);
//! }
//! assert!(reg.histogram("stage.demo.seconds").is_some());
//! ```

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod timer;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::MetricsRegistry;
pub use timer::StageTimer;

use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every instrumented path records into.
///
/// Library code always records here; tests that need isolation construct
/// their own [`MetricsRegistry`] or assert on monotone properties
/// (presence, counts strictly increasing) rather than exact totals.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared_and_stable() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
        global().incr("obs.selftest", 1);
        assert!(global().counter("obs.selftest") >= 1);
    }
}
