//! End-to-end suite: a real server on an ephemeral port, hammered by
//! concurrent clients over real sockets.
//!
//! The invariants under test are the ISSUE 7 acceptance criteria plus
//! the ISSUE 9 ingestion contract: served responses are *bit-identical*
//! to direct `link_query_authors` output, no accepted request is
//! dropped under concurrency, fault injection (truncated bodies,
//! oversized payloads, gibberish, chunked transfer coding) yields
//! typed 4xx/501 — never a panic or a hang — `POST /ingest` grows the
//! serving generation in place, generation swaps never tear or drop a
//! request, and `POST /shutdown` drains everything in flight before
//! `serve` returns.

use soulmate_core::{
    EngineCell, EngineGeneration, EngineMode, IvfConfig, Pipeline, PipelineConfig,
    PipelineSnapshot, RefitManager, Trigger,
};
use soulmate_corpus::{generate, Dataset, GeneratorConfig, Timestamp};
use soulmate_serve::{serve, serve_with_refit, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

fn fixture() -> (Dataset, PipelineSnapshot) {
    let dataset = generate(&GeneratorConfig {
        n_authors: 16,
        n_communities: 4,
        n_concepts: 5,
        entities_per_concept: 8,
        mean_tweets_per_author: 25,
        ..GeneratorConfig::small()
    })
    .unwrap();
    let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).unwrap();
    let handles: Vec<String> = dataset.authors.iter().map(|a| a.handle.clone()).collect();
    let snapshot = pipeline.snapshot(&handles);
    (dataset, snapshot)
}

/// Tweets of one dataset author, as a query group.
fn author_tweets(dataset: &Dataset, author: u32, take: usize) -> Vec<(Timestamp, String)> {
    dataset
        .tweets
        .iter()
        .filter(|t| t.author == author)
        .take(take)
        .map(|t| (t.timestamp, t.text.clone()))
        .collect()
}

/// NDJSON request line for a tweet group.
fn query_line(tweets: &[(Timestamp, String)]) -> String {
    let pairs: Vec<String> = tweets
        .iter()
        .map(|(ts, text)| format!("[{}, {}]", ts.0, serde_json::to_string(text).unwrap()))
        .collect();
    format!("[{}]", pairs.join(", "))
}

/// One full HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {raw:?}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, body.to_string())
}

/// An [`EngineCell`] holding one generation built from `snapshot`.
fn cell(snapshot: &PipelineSnapshot, mode: EngineMode) -> EngineCell {
    EngineCell::new(EngineGeneration::from_snapshot(snapshot.clone(), mode).unwrap())
}

/// Run `body(addr)` against a live server and shut it down afterwards;
/// asserts the server exits cleanly.
fn with_server(cell: &EngineCell, config: ServeConfig, body: impl FnOnce(SocketAddr) + Send) {
    with_refit_server(cell, None, config, body);
}

/// [`with_server`] with an optional attached refit manager.
fn with_refit_server(
    cell: &EngineCell,
    refit: Option<&RefitManager>,
    config: ServeConfig,
    body: impl FnOnce(SocketAddr) + Send,
) {
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let handle = scope.spawn(move || {
            serve_with_refit(cell, refit, &config, move |addr| tx.send(addr).unwrap())
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server never reported ready");
        body(addr);
        let (status, _) = exchange(addr, "POST", "/shutdown", "");
        assert_eq!(status, 202);
        handle
            .join()
            .expect("server thread panicked")
            .expect("serve returned an error");
    });
}

#[test]
fn health_metrics_and_routing() {
    let (_, snapshot) = fixture();
    let cell = cell(&snapshot, EngineMode::Exact);
    with_server(&cell, ServeConfig::default(), |addr| {
        let (status, body) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"authors\":16"), "{body}");
        assert!(body.contains("\"generation\":0"), "{body}");

        let (status, body) = exchange(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        // The registry export is JSON with the serve counters present
        // once a request has been counted.
        assert!(body.contains("serve.requests"), "{body}");

        let (status, body) = exchange(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        assert!(body.contains("\"kind\":\"not_found\""), "{body}");

        let (status, body) = exchange(addr, "GET", "/link", "");
        assert_eq!(status, 405);
        assert!(body.contains("\"kind\":\"method_not_allowed\""), "{body}");
    });
}

#[test]
fn routing_strips_query_strings_and_fragments() {
    let (_, snapshot) = fixture();
    let cell = cell(&snapshot, EngineMode::Exact);
    with_server(&cell, ServeConfig::default(), |addr| {
        // Regression: the router used to match the raw request target,
        // so any query string 404'd a perfectly valid route.
        let (status, body) = exchange(addr, "GET", "/healthz?probe=lb", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (status, body) = exchange(addr, "GET", "/healthz#fragment", "");
        assert_eq!(status, 200, "{body}");

        // The query string reaches the handler, not the 404 arm: an
        // empty /link body is the handler's own `invalid` 400.
        let (status, body) = exchange(addr, "POST", "/link?verbose=1", "");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("\"kind\":\"invalid\""), "{body}");

        // Method check happens on the stripped route too.
        let (status, body) = exchange(addr, "GET", "/link?x=1", "");
        assert_eq!(status, 405, "{body}");

        // Unknown paths still 404 and the message keeps the raw
        // target so clients see exactly what they sent.
        let (status, body) = exchange(addr, "GET", "/nope?x=1", "");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("/nope?x=1"), "{body}");
    });
}

#[test]
fn chunked_transfer_encoding_is_501_not_an_empty_body() {
    let (_, snapshot) = fixture();
    let cell = cell(&snapshot, EngineMode::Exact);
    with_server(&cell, ServeConfig::default(), |addr| {
        // Regression: a chunked /link request used to be parsed as an
        // empty body (the header was silently ignored) and answered
        // 400 `invalid` — misframing the connection. RFC 7230 §3.3.3
        // requires refusing the unimplemented transfer coding.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                b"POST /link HTTP/1.1\r\nHost: test\r\nTransfer-Encoding: chunked\r\n\r\n\
                  10\r\n[[0, \"whatever\"]]\r\n0\r\n\r\n",
            )
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 501, "{body}");
        assert!(body.contains("\"kind\":\"not_implemented\""), "{body}");

        // The server is healthy afterwards.
        let (status, _) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
    });
}

#[test]
fn concurrent_mixed_load_is_bit_identical_and_lossless() {
    let (dataset, snapshot) = fixture();
    let engine = snapshot.query_engine().unwrap();

    // Precompute the expected wire body for every valid author query by
    // running the exact same batch through the engine directly.
    let groups: Vec<Vec<(Timestamp, String)>> =
        (0..8u32).map(|a| author_tweets(&dataset, a, 6)).collect();
    let expected: Vec<String> = groups
        .iter()
        .map(|g| {
            let outcomes = engine.link_query_authors(std::slice::from_ref(g)).unwrap();
            soulmate_serve::render_outcomes(&outcomes)
        })
        .collect();
    drop(engine);

    let cell = cell(&snapshot, EngineMode::Exact);
    let config = ServeConfig {
        threads: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    };
    with_server(&cell, config, |addr| {
        let per_client = 6usize;
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for client in 0..8usize {
                let (groups, expected) = (&groups, &expected);
                workers.push(scope.spawn(move || {
                    let mut answered = 0usize;
                    for i in 0..per_client {
                        match (client + i) % 3 {
                            // Valid query: response must be bit-identical
                            // to the direct engine call.
                            0 => {
                                let which = (client * per_client + i) % groups.len();
                                let line = query_line(&groups[which]);
                                let (status, body) = exchange(addr, "POST", "/link", &line);
                                assert_eq!(status, 200, "{body}");
                                assert_eq!(body, expected[which], "author {which} diverged");
                            }
                            // Out-of-vocabulary query: typed 400, kind
                            // `invalid`, served without disturbing others.
                            1 => {
                                let line = "[[0, \"zzzunknown wordsxq notinvocab\"]]";
                                let (status, body) = exchange(addr, "POST", "/link", line);
                                assert_eq!(status, 400, "{body}");
                                assert!(body.contains("\"kind\":\"invalid\""), "{body}");
                            }
                            // Malformed line: typed 400, kind `parse`.
                            _ => {
                                let (status, body) =
                                    exchange(addr, "POST", "/link", "this is not json");
                                assert_eq!(status, 400, "{body}");
                                assert!(body.contains("\"kind\":\"parse\""), "{body}");
                            }
                        }
                        answered += 1;
                    }
                    answered
                }));
            }
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            // Every request got an answer: nothing was dropped.
            assert_eq!(total, 8 * per_client);
        });
    });
}

#[test]
fn batches_match_the_multi_query_engine_path() {
    let (dataset, snapshot) = fixture();
    let engine = snapshot.query_engine().unwrap();
    let groups: Vec<Vec<(Timestamp, String)>> =
        (0..4u32).map(|a| author_tweets(&dataset, a, 5)).collect();
    let direct = soulmate_serve::render_outcomes(&engine.link_query_authors(&groups).unwrap());
    drop(engine);

    let cell = cell(&snapshot, EngineMode::Exact);
    with_server(&cell, ServeConfig::default(), |addr| {
        let body: String = groups
            .iter()
            .map(|g| query_line(g) + "\n")
            .collect::<String>();
        let (status, served) = exchange(addr, "POST", "/link", &body);
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, direct, "batch response diverged from engine output");
        // One outcome line per query, in order.
        assert_eq!(served.lines().count(), groups.len());
        for (i, line) in served.lines().enumerate() {
            let v = serde_json::from_str::<serde_json::Value>(line).unwrap();
            assert!(v.get("query_index").is_some(), "line {i}: {line}");
        }
    });
}

#[test]
fn ivf_serving_matches_the_ivf_engine_path() {
    let (dataset, snapshot) = fixture();
    let engine = snapshot.query_engine_ivf(&IvfConfig::default()).unwrap();
    assert!(engine.index().is_some());
    let groups: Vec<Vec<(Timestamp, String)>> =
        (0..3u32).map(|a| author_tweets(&dataset, a, 5)).collect();
    let direct =
        soulmate_serve::render_outcomes(&engine.link_query_authors_ivf(&groups, 0).unwrap());
    drop(engine);

    let cell = cell(&snapshot, EngineMode::Ivf);
    with_server(&cell, ServeConfig::default(), |addr| {
        let body: String = groups
            .iter()
            .map(|g| query_line(g) + "\n")
            .collect::<String>();
        let (status, served) = exchange(addr, "POST", "/link", &body);
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, direct, "IVF response diverged from engine output");
    });
}

#[test]
fn quant_serving_matches_the_quant_engine_path() {
    let (dataset, snapshot) = fixture();
    let engine = snapshot.query_engine_quant().unwrap();
    assert!(engine.quant_enabled());
    let groups: Vec<Vec<(Timestamp, String)>> =
        (0..3u32).map(|a| author_tweets(&dataset, a, 5)).collect();
    let direct =
        soulmate_serve::render_outcomes(&engine.link_query_authors_quant(&groups, 4).unwrap());
    drop(engine);

    let cell = cell(&snapshot, EngineMode::Quant);
    let config = ServeConfig {
        rerank: 4,
        ..ServeConfig::default()
    };
    with_server(&cell, config, |addr| {
        let body: String = groups
            .iter()
            .map(|g| query_line(g) + "\n")
            .collect::<String>();
        let (status, served) = exchange(addr, "POST", "/link", &body);
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, direct, "quant response diverged from engine output");
    });
}

#[test]
fn fault_injection_truncated_and_oversized_bodies() {
    let (_, snapshot) = fixture();
    let cell = cell(&snapshot, EngineMode::Exact);
    let config = ServeConfig {
        max_body_bytes: 512,
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    with_server(&cell, config, |addr| {
        // Oversized declared payload: refused up front with 413.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /link HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 413, "{body}");
        assert!(body.contains("\"kind\":\"payload_too_large\""), "{body}");

        // Truncated body, connection held open: the read timeout turns
        // it into a 400 instead of a hung worker.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /link HTTP/1.1\r\nContent-Length: 400\r\n\r\n[[0,")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, body) = parse_response(&raw);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("truncated"), "{body}");

        // Truncated body, write half closed: same 400 path via EOF.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /link HTTP/1.1\r\nContent-Length: 400\r\n\r\nabc")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 400);

        // Gibberish request line.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (status, _) = parse_response(&raw);
        assert_eq!(status, 400);

        // The server is still healthy after all of that.
        let (status, _) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
    });
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (dataset, snapshot) = fixture();
    let cell = cell(&snapshot, EngineMode::Exact);
    let groups: Vec<Vec<(Timestamp, String)>> =
        (0..4u32).map(|a| author_tweets(&dataset, a, 6)).collect();

    let config = ServeConfig {
        threads: 2,
        queue_depth: 64,
        ..ServeConfig::default()
    };
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        let cell_ref = &cell;
        let server =
            scope.spawn(move || serve(cell_ref, &config, move |addr| tx.send(addr).unwrap()));
        let addr = rx.recv_timeout(Duration::from_secs(10)).unwrap();

        // Launch a wave of queries and, while they are in flight, the
        // shutdown request. Every query must still be answered.
        std::thread::scope(|clients| {
            let mut workers = Vec::new();
            for i in 0..6usize {
                let groups = &groups;
                workers.push(clients.spawn(move || {
                    let line = query_line(&groups[i % groups.len()]);
                    let (status, _) = exchange(addr, "POST", "/link", &line);
                    status
                }));
            }
            let shut = clients.spawn(move || {
                let (status, _) = exchange(addr, "POST", "/shutdown", "");
                status
            });
            for w in workers {
                let status = w.join().unwrap();
                assert_eq!(status, 200, "in-flight request dropped during shutdown");
            }
            assert_eq!(shut.join().unwrap(), 202);
        });

        server
            .join()
            .expect("server thread panicked")
            .expect("serve returned an error");
        // The listener is gone: new connections are refused.
        assert!(TcpStream::connect(addr).is_err());
    });
}

/// NDJSON `/ingest` request line for one new author.
fn ingest_line(handle: &str, tweets: &[(Timestamp, String)]) -> String {
    let pairs: Vec<String> = tweets
        .iter()
        .map(|(ts, text)| format!("[{}, {}]", ts.0, serde_json::to_string(text).unwrap()))
        .collect();
    format!(
        "{{\"handle\": {}, \"tweets\": [{}]}}",
        serde_json::to_string(handle).unwrap(),
        pairs.join(", ")
    )
}

/// Poll `/healthz` until the reported generation reaches `want`.
fn wait_for_generation(addr: SocketAddr, want: u64, timeout: Duration) {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let (status, body) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
        let generation = v.get("generation").and_then(|g| g.as_u64()).unwrap();
        if generation >= want {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "generation never reached {want}: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn ingest_grows_the_serving_generation_in_place() {
    let (dataset, snapshot) = fixture();
    let serving = cell(&snapshot, EngineMode::Exact);

    // Expected wire bytes: grow a generation directly with the same
    // batch and render a probe query from it.
    let new_tweets = author_tweets(&dataset, 3, 8);
    let batches = vec![soulmate_core::IngestBatch {
        handle: "newbie".to_string(),
        tweets: new_tweets.clone(),
    }];
    let gen0 = EngineGeneration::from_snapshot(snapshot.clone(), EngineMode::Exact).unwrap();
    let (grown, _) = gen0.ingest(&batches).unwrap();
    let probe = author_tweets(&dataset, 1, 5);
    let direct = soulmate_serve::render_outcomes(
        &grown
            .engine()
            .link_query_authors(std::slice::from_ref(&probe))
            .unwrap(),
    );

    with_server(&serving, ServeConfig::default(), |addr| {
        let (status, body) = exchange(addr, "POST", "/ingest", &ingest_line("newbie", &new_tweets));
        assert_eq!(status, 200, "{body}");
        let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
        assert_eq!(v.get("generation").and_then(|g| g.as_u64()), Some(1));
        // No refit manager attached: nothing to schedule.
        assert_eq!(
            v.get("refit_scheduled").and_then(|r| r.as_bool()),
            Some(false)
        );
        let ingested = v.get("ingested").and_then(|x| x.as_array()).unwrap();
        assert_eq!(ingested.len(), 1);
        assert_eq!(
            ingested[0].get("author_index").and_then(|x| x.as_u64()),
            Some(16)
        );
        assert_eq!(
            ingested[0].get("handle").and_then(|h| h.as_str()),
            Some("newbie")
        );

        // /healthz reflects the swap immediately.
        let (status, body) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"authors\":17"), "{body}");
        assert!(body.contains("\"generation\":1"), "{body}");

        // Served queries are bit-identical to the directly-grown engine.
        let (status, served) = exchange(addr, "POST", "/link", &query_line(&probe));
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, direct, "served delta generation diverged");

        // Malformed and unvectorizable ingest bodies are typed errors,
        // and neither bumps the generation.
        let (status, body) = exchange(addr, "POST", "/ingest", "{\"nope\": 1}");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("\"kind\":\"parse\""), "{body}");
        let oov = ingest_line("ghost", &[(Timestamp(0), "zzzqqq xxyyzz".to_string())]);
        let (status, body) = exchange(addr, "POST", "/ingest", &oov);
        assert_eq!(status, 400, "{body}");
        let (_, body) = exchange(addr, "GET", "/healthz", "");
        assert!(body.contains("\"generation\":1"), "{body}");
    });
}

#[test]
fn generation_swaps_never_tear_or_drop_requests() {
    let (dataset, snapshot) = fixture();
    let serving = cell(&snapshot, EngineMode::Exact);
    // Trigger fires once 6 tweets accumulate — the single ingest below
    // crosses it, scheduling a background full refit.
    let manager = RefitManager::new(
        dataset.clone(),
        PipelineConfig::fast(),
        Trigger::new(6),
        EngineMode::Exact,
        None,
    );
    let config = ServeConfig {
        threads: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    };
    with_refit_server(&serving, Some(&manager), config, |addr| {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let groups: Vec<Vec<(Timestamp, String)>> =
            (0..4u32).map(|a| author_tweets(&dataset, a, 5)).collect();
        std::thread::scope(|clients| {
            let mut workers = Vec::new();
            for c in 0..4usize {
                let (stop, groups) = (&stop, &groups);
                workers.push(clients.spawn(move || {
                    let mut served = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let line = query_line(&groups[(c + served) % groups.len()]);
                        let (status, body) = exchange(addr, "POST", "/link", &line);
                        // Zero dropped, zero 5xx: every query during the
                        // delta publish and the refit swap succeeds.
                        assert_eq!(status, 200, "query failed during swap: {body}");
                        // Consistency: the answer comes from exactly one
                        // whole generation — 16 (seed), 17 (delta), or
                        // 17-author refit — never a torn mixture.
                        let v = serde_json::from_str::<serde_json::Value>(body.trim()).unwrap();
                        let sims = v.get("similarities").and_then(|s| s.as_array()).unwrap();
                        let n_authors = sims.len() - 1; // sims include the query row
                        assert!(
                            (16..=17).contains(&n_authors),
                            "torn generation: {n_authors} authors"
                        );
                        served += 1;
                    }
                    served
                }));
            }

            // Mid-load: ingest one author with 8 tweets (>= trigger 6).
            let (status, body) = exchange(
                addr,
                "POST",
                "/ingest",
                &ingest_line("grow-1", &author_tweets(&dataset, 5, 8)),
            );
            assert_eq!(status, 200, "{body}");
            assert!(body.contains("\"refit_scheduled\":true"), "{body}");
            assert!(body.contains("\"generation\":1"), "{body}");

            // Generation 2 is the background refit landing.
            wait_for_generation(addr, 2, Duration::from_secs(120));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert!(total > 0, "load generator never issued a query");
        });

        // The refit generation serves the grown author set.
        let (status, body) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"authors\":17"), "{body}");
    });
}
