//! `soulmate serve`: a long-running query server over hot-swappable
//! [`soulmate_core::EngineGeneration`]s.
//!
//! The CLI pays snapshot load + engine construction on *every* `link`
//! invocation — 1.2 s at n=4096 before the first query runs. This crate
//! amortises that cost: an engine generation is built once, published
//! through a shared [`soulmate_core::EngineCell`], and queried over a
//! deliberately minimal HTTP/1.1 surface with NDJSON bodies (one JSON
//! object per line). `POST /ingest` grows the serving generation with
//! the frozen-embedding delta path and publishes the result; an
//! attached [`soulmate_core::RefitManager`] runs full offline refits in
//! the background and hot-swaps them in with zero dropped or blocked
//! requests. See DESIGN.md §15 for the protocol, threading model,
//! backpressure, and shutdown sequence, and §17 for ingestion and
//! generation swaps.
//!
//! Zero dependencies beyond std and the workspace: the listener is a
//! plain [`std::net::TcpListener`], the HTTP parser handles exactly the
//! subset the protocol emits, and worker threads are scoped (the cell
//! and refit manager borrow from the caller, so `'static` spawns are
//! off the table — `std::thread::scope` shares the borrows safely
//! instead).

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]
// This crate IS the serving path (DESIGN.md §12): a panic in a worker
// kills a request; a panic in the accept loop kills the server. Every
// failure must flow into an HTTP error response instead. Tests are
// exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod http;
mod protocol;
mod server;

pub use http::{read_request, write_response, HttpError, Request, MAX_HEADER_BYTES};
pub use protocol::{
    error_body, error_kind, parse_ingest_body, parse_link_body, render_ingest_response,
    render_outcomes, status_for,
};
pub use server::{serve, serve_with_refit, ConnQueue, ServeConfig, ServeError};
