//! `soulmate serve`: a long-running query server over a prepared
//! [`soulmate_core::QueryEngine`].
//!
//! The CLI pays snapshot load + engine construction on *every* `link`
//! invocation — 1.2 s at n=4096 before the first query runs. This crate
//! amortises that cost: the engine is built once, shared behind an `Arc`
//! by a fixed pool of worker threads, and queried over a deliberately
//! minimal HTTP/1.1 surface with NDJSON bodies (one JSON object per
//! line). See DESIGN.md §15 for the protocol, threading model,
//! backpressure, and shutdown sequence.
//!
//! Zero dependencies beyond std and the workspace: the listener is a
//! plain [`std::net::TcpListener`], the HTTP parser handles exactly the
//! subset the protocol emits, and worker threads are scoped (the engine
//! borrows from the snapshot, so `'static` spawns are off the table —
//! `std::thread::scope` shares the borrow safely instead).

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]
// This crate IS the serving path (DESIGN.md §12): a panic in a worker
// kills a request; a panic in the accept loop kills the server. Every
// failure must flow into an HTTP error response instead. Tests are
// exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

mod http;
mod protocol;
mod server;

pub use http::{read_request, write_response, HttpError, Request, MAX_HEADER_BYTES};
pub use protocol::{error_body, error_kind, parse_link_body, render_outcomes, status_for};
pub use server::{serve, ConnQueue, ServeConfig, ServeError};
