//! Minimal HTTP/1.1 request reader and response writer.
//!
//! Exactly the subset the serve protocol needs: one request per
//! connection, `Connection: close` semantics, `Content-Length` bodies
//! (a request declaring any `Transfer-Encoding` is refused with 501
//! rather than misframed). Every read is bounded — a header block
//! larger than [`MAX_HEADER_BYTES`], a declared body larger than the
//! configured cap, or a body the client never finishes sending all turn
//! into typed errors, never into an unbounded buffer or a hung thread
//! (callers set a socket read timeout before parsing).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers. 8 KiB matches the common
/// proxy default and is ~40× what the protocol's own clients emit.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`).
    pub method: String,
    /// Request target path, e.g. `/link`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps onto one protocol
/// error response (status + machine-readable kind).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, malformed headers, or a body the client
    /// closed/stalled before completing. → 400.
    BadRequest(String),
    /// Declared `Content-Length` exceeds the configured cap. → 413.
    PayloadTooLarge {
        /// Bytes the client declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request used a `Transfer-Encoding` (e.g. chunked) this
    /// parser does not implement. RFC 7230 §3.3.3: a server that does
    /// not understand the transfer coding must not guess at the body
    /// framing — silently reading it as empty would desynchronise the
    /// connection. → 501.
    NotImplemented(String),
    /// The socket failed mid-read for a non-protocol reason. The
    /// connection is unusable; no response can be written.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "payload of {declared} bytes exceeds limit of {limit}")
            }
            HttpError::NotImplemented(m) => write!(f, "not implemented: {m}"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Read and parse one request from `stream`.
///
/// The caller is expected to have set a read timeout on the stream; a
/// timeout while the body is incomplete surfaces as
/// [`HttpError::BadRequest`] ("truncated"), which keeps a stalling
/// client from pinning a worker forever.
///
/// # Errors
/// [`HttpError`] as documented on each variant.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let (header, mut body) = read_header_block(stream)?;
    let header = String::from_utf8(header)
        .map_err(|_| HttpError::BadRequest("header block is not UTF-8".into()))?;
    let mut lines = header.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut declared_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
        };
        // This parser frames bodies by Content-Length only. Any
        // Transfer-Encoding — chunked or otherwise — would previously be
        // skipped here and the body silently parsed as empty; per RFC
        // 7230 §3.3.3 an unsupported transfer coding must be refused
        // outright instead of misframing the message.
        if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::NotImplemented(format!(
                "transfer-encoding `{}` is not supported; send a content-length body",
                value.trim()
            )));
        }
        if name.trim().eq_ignore_ascii_case("content-length") {
            let parsed = value.trim().parse::<usize>().map_err(|_| {
                HttpError::BadRequest(format!("invalid content-length `{}`", value.trim()))
            })?;
            // RFC 7230 §3.3.2: conflicting Content-Length values make
            // the message framing ambiguous and must be rejected;
            // repeats of the same value are tolerated.
            if declared_length.is_some_and(|seen| seen != parsed) {
                return Err(HttpError::BadRequest(
                    "conflicting content-length headers".into(),
                ));
            }
            declared_length = Some(parsed);
        }
    }
    let content_length = declared_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    // Bytes read past the header block are the body's prefix; `take`
    // bounds the rest so a lying client cannot feed more than declared.
    if body.len() > content_length {
        body.truncate(content_length);
    }
    let mut chunk = [0u8; 4096];
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        // `want <= chunk.len()` by construction, so the slice is always
        // available; the `else` arm is unreachable but stays typed.
        let Some(slice) = chunk.get_mut(..want) else {
            return Err(HttpError::BadRequest("internal read-bound error".into()));
        };
        let got = match stream.read(slice) {
            Ok(0) => {
                return Err(HttpError::BadRequest(format!(
                    "truncated body: got {} of {content_length} declared bytes",
                    body.len()
                )))
            }
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::BadRequest(format!(
                    "truncated body: timed out after {} of {content_length} declared bytes",
                    body.len()
                )))
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        body.extend_from_slice(chunk.get(..got).unwrap_or(&[]));
    }
    Ok(Request { method, path, body })
}

/// Read until the `\r\n\r\n` header terminator; returns the header bytes
/// (without the terminator) and any body bytes read past it.
fn read_header_block(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_terminator(&buf) {
            let rest = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::BadRequest(format!(
                "header block exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::BadRequest(
                    "connection closed before headers completed".into(),
                ))
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::BadRequest(
                    "timed out waiting for headers".into(),
                ))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A read timeout surfaces as `WouldBlock` (most Unixes) or `TimedOut`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Standard reason phrase for the status codes the protocol emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one complete response and flush it. `Connection: close` is
/// always sent: the protocol is one request per connection.
///
/// # Errors
/// Propagates socket write errors (callers treat them as best-effort —
/// a client that hung up mid-response is not a server failure).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    /// Run `client` against a socket pair; returns what `read_request`
    /// produced on the server side.
    fn roundtrip(
        max_body: usize,
        client: impl FnOnce(&mut TcpStream) + Send,
    ) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                client(&mut c);
            });
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            read_request(&mut stream, max_body)
        })
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(1024, |c| {
            c.write_all(b"POST /link HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        })
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/link");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn oversized_declared_body_is_rejected_without_reading_it() {
        let err = roundtrip(64, |c| {
            c.write_all(b"POST /link HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
                .unwrap();
        })
        .unwrap_err();
        assert!(matches!(
            err,
            HttpError::PayloadTooLarge {
                declared: 1_000_000,
                limit: 64
            }
        ));
    }

    #[test]
    fn truncated_body_times_out_as_bad_request() {
        let err = roundtrip(1024, |c| {
            // Declare 100 bytes, send 3, keep the socket open: the read
            // timeout must turn this into a 400, not a hung worker.
            c.write_all(b"POST /link HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
                .unwrap();
            std::thread::sleep(Duration::from_millis(600));
        })
        .unwrap_err();
        match err {
            HttpError::BadRequest(m) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn early_close_mid_body_is_bad_request() {
        let err = roundtrip(1024, |c| {
            c.write_all(b"POST /link HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
                .unwrap();
            c.shutdown(std::net::Shutdown::Write).unwrap();
        })
        .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
    }

    #[test]
    fn gibberish_and_bad_lengths_are_bad_requests() {
        for raw in [
            "not http at all\r\n\r\n",
            "GET\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "POST /link HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-header\r\n\r\n",
        ] {
            let err = roundtrip(1024, move |c| {
                c.write_all(raw.as_bytes()).unwrap();
            })
            .unwrap_err();
            assert!(matches!(err, HttpError::BadRequest(_)), "raw = {raw:?}");
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_but_repeats_pass() {
        let err = roundtrip(1024, |c| {
            c.write_all(
                b"POST /link HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\nhello",
            )
            .unwrap();
        })
        .unwrap_err();
        match err {
            HttpError::BadRequest(m) => assert!(m.contains("conflicting"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // A repeated but identical value keeps unambiguous framing.
        let req = roundtrip(1024, |c| {
            c.write_all(
                b"POST /link HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
        })
        .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn transfer_encoding_is_refused_not_misframed() {
        // Regression: a chunked body used to be silently parsed as
        // empty (only Content-Length was inspected). It must be a
        // typed NotImplemented error now, for ANY transfer coding.
        for te in ["chunked", "gzip, chunked", "identity"] {
            let raw = format!(
                "POST /link HTTP/1.1\r\nTransfer-Encoding: {te}\r\n\r\n5\r\nhello\r\n0\r\n\r\n"
            );
            let err = roundtrip(1024, move |c| {
                c.write_all(raw.as_bytes()).unwrap();
            })
            .unwrap_err();
            match err {
                HttpError::NotImplemented(m) => {
                    assert!(m.contains("transfer-encoding"), "{m}")
                }
                other => panic!("te = {te:?}: expected NotImplemented, got {other:?}"),
            }
        }
    }

    #[test]
    fn unbounded_header_block_is_rejected() {
        let err = roundtrip(1024, |c| {
            let filler = format!(
                "GET / HTTP/1.1\r\nX-Junk: {}\r\n",
                "a".repeat(MAX_HEADER_BYTES)
            );
            c.write_all(filler.as_bytes()).unwrap();
        })
        .unwrap_err();
        match err {
            HttpError::BadRequest(m) => assert!(m.contains("header block exceeds"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn response_writer_emits_parseable_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                write_response(&mut stream, 200, "application/json", "{\"ok\":true}").unwrap();
            });
            let mut c = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            c.read_to_string(&mut text).unwrap();
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
            assert!(text.contains("Content-Length: 11\r\n"), "{text}");
            assert!(text.ends_with("{\"ok\":true}"), "{text}");
        });
    }
}
