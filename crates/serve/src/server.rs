//! The server proper: accept loop, bounded connection queue, fixed
//! worker pool, request dispatch, generation hot-swap, and graceful
//! shutdown.
//!
//! Threading model (DESIGN.md §15, §17): the calling thread owns the
//! accept loop; `threads` scoped workers pop accepted connections from
//! a bounded queue and, per request, clone the current
//! [`EngineGeneration`](soulmate_core::EngineGeneration) out of the
//! shared [`EngineCell`] (one `Arc` bump under a short lock). A request
//! therefore runs against one immutable generation end to end — a
//! concurrent `/ingest` or background refit publishing a new generation
//! never blocks or tears an in-flight query. When the queue is full the
//! accept loop answers 503 `overloaded` immediately instead of letting
//! latency grow without bound — the queue depth *is* the backpressure
//! contract.
//!
//! `/ingest` requests are serialized by a dedicated mutex: the delta
//! path clones the current generation, grows it, and publishes — two
//! concurrent ingests would both clone generation G and the second
//! publish would silently drop the first's authors. Queries are never
//! behind that lock. When a [`RefitManager`] is attached, each absorbed
//! batch may arm its rebuild trigger; a dedicated scoped thread then
//! runs the full `Pipeline::fit` refit off the request path and
//! publishes the fresh generation through the same cell.
//!
//! Shutdown: safe zero-dependency Rust cannot trap SIGINT (a signal
//! handler needs `unsafe` or a crate), so the supported trigger is
//! `POST /shutdown`. The handling worker acknowledges with 202, raises
//! the shutdown flag, and pokes the listener with a loopback connection
//! so the blocking `accept` observes the flag. The accept loop stops
//! taking new connections; workers drain everything already queued and
//! in flight, then [`serve`] returns. No accepted request is dropped.

use crate::http::{read_request, write_response, HttpError, Request};
use crate::protocol;
use soulmate_core::{EngineCell, RefitManager};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Server tunables. The CLI maps its `serve` flags straight onto this.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind host (default loopback).
    pub host: String,
    /// Bind port; 0 asks the OS for an ephemeral port (the chosen one
    /// is reported through `serve`'s `on_ready` callback).
    pub port: u16,
    /// Worker threads serving requests.
    pub threads: usize,
    /// Accepted connections waiting for a worker before new arrivals
    /// get 503 `overloaded`.
    pub queue_depth: usize,
    /// Largest accepted request body in bytes; larger declared bodies
    /// get 413 without being read.
    pub max_body_bytes: usize,
    /// IVF probe width when the engine carries an index (0 = index
    /// default); ignored on the exact path.
    pub nprobe: usize,
    /// Re-rank depth when the engine has the i8 fast path built
    /// (`QueryEngine::enable_quant`): how many stage-1 candidates per
    /// query are exact-scored (0 = engine default). Ignored on the exact
    /// and IVF paths.
    pub rerank: usize,
    /// Socket read timeout: a client that stalls mid-request gets 400
    /// after this long instead of pinning a worker.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            nprobe: 0,
            rerank: 0,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Why the server could not run (all post-bind failures are per-request
/// and answered over the wire instead).
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen socket failed.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A bounded MPMC handoff queue built on `Mutex` + `Condvar` (std's
/// mpsc `Receiver` is `!Sync`, so it cannot feed a worker pool
/// directly). `try_push` never blocks — a full queue is the signal to
/// shed load. `pop` blocks until an item arrives or the queue is closed
/// *and* drained, which is exactly the worker drain-then-exit loop.
pub struct ConnQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> ConnQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue without blocking; a full or closed queue hands the item
    /// back so the caller can refuse it explicitly.
    ///
    /// # Errors
    /// `Err(item)` when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let Ok(mut state) = self.state.lock() else {
            // A poisoned lock means a worker panicked while holding it;
            // shed the connection rather than propagate the panic.
            return Err(item);
        };
        if state.closed || state.items.len() >= state.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is open and empty. `None`
    /// means closed *and* fully drained — the worker's exit signal.
    pub fn pop(&self) -> Option<T> {
        let Ok(mut state) = self.state.lock() else {
            return None;
        };
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(s) => s,
                Err(_) => return None,
            };
        }
    }

    /// Close the queue: `try_push` starts refusing, blocked `pop`s wake
    /// and drain whatever is left.
    pub fn close(&self) {
        if let Ok(mut state) = self.state.lock() {
            state.closed = true;
        }
        self.ready.notify_all();
    }

    /// Items currently waiting (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().map(|s| s.items.len()).unwrap_or(0)
    }

    /// True when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wakes the background refit thread when an absorbed `/ingest` batch
/// arms the rebuild trigger, and tells it to exit on shutdown. A refit
/// request arriving while one is already running is coalesced into a
/// single follow-up run (the flag is level-, not edge-triggered).
struct RefitSignal {
    state: Mutex<(bool, bool)>, // (refit pending, stop)
    cv: Condvar,
}

impl RefitSignal {
    fn new() -> RefitSignal {
        RefitSignal {
            state: Mutex::new((false, false)),
            cv: Condvar::new(),
        }
    }

    fn request(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.0 = true;
        drop(s);
        self.cv.notify_all();
    }

    fn stop(&self) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.1 = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Block until a refit is due (`true`) or shutdown is requested
    /// (`false`). Shutdown wins: a pending refit at drain time is
    /// abandoned — its data is safe in the [`RefitManager`]'s dataset
    /// and will be picked up by the next server run's first refit.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if s.1 {
                return false;
            }
            if s.0 {
                s.0 = false;
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Everything a worker needs to serve one connection. Borrowed shared
/// state only — per-request engine access goes through `cell`.
struct Ctx<'a> {
    cell: &'a EngineCell,
    refit: Option<&'a RefitManager>,
    refit_signal: &'a RefitSignal,
    /// Serializes `/ingest` clone-grow-publish cycles (see module docs).
    ingest_lock: &'a Mutex<()>,
    config: &'a ServeConfig,
    shutdown: &'a AtomicBool,
    local: SocketAddr,
}

/// Run the server until a `POST /shutdown` drains it. Blocks the
/// calling thread (which runs the accept loop); `on_ready` fires once
/// with the bound address — with `port: 0` this is the only way to
/// learn the ephemeral port.
///
/// Workers serve each request from whatever generation `cell` holds at
/// that moment; `/ingest` publishes delta generations into the same
/// cell. Without a [`RefitManager`] (this entry point) no background
/// refits run — see [`serve_with_refit`].
///
/// # Errors
/// [`ServeError::Bind`] when the listen socket cannot be created.
pub fn serve<F: FnOnce(SocketAddr)>(
    cell: &EngineCell,
    config: &ServeConfig,
    on_ready: F,
) -> Result<(), ServeError> {
    serve_with_refit(cell, None, config, on_ready)
}

/// [`serve`], plus an attached [`RefitManager`]: every `/ingest` batch
/// is absorbed into the manager's growing dataset, and when its
/// [`Trigger`](soulmate_core::Trigger) fires a dedicated scoped thread
/// runs the full offline refit and hot-swaps the fresh generation into
/// `cell` — queries in flight keep their generation, new requests see
/// the new one, nothing blocks or drops.
///
/// # Errors
/// [`ServeError::Bind`] when the listen socket cannot be created.
pub fn serve_with_refit<F: FnOnce(SocketAddr)>(
    cell: &EngineCell,
    refit: Option<&RefitManager>,
    config: &ServeConfig,
    on_ready: F,
) -> Result<(), ServeError> {
    let requested = format!("{}:{}", config.host, config.port);
    let listener = TcpListener::bind(&requested).map_err(|source| ServeError::Bind {
        addr: requested.clone(),
        source,
    })?;
    let local = listener.local_addr().map_err(|source| ServeError::Bind {
        addr: requested,
        source,
    })?;
    on_ready(local);

    let shutdown = AtomicBool::new(false);
    let queue: ConnQueue<TcpStream> = ConnQueue::new(config.queue_depth);
    let refit_signal = RefitSignal::new();
    let ingest_lock = Mutex::new(());
    let ctx = Ctx {
        cell,
        refit,
        refit_signal: &refit_signal,
        ingest_lock: &ingest_lock,
        config,
        shutdown: &shutdown,
        local,
    };
    let ctx = &ctx;

    std::thread::scope(|scope| {
        if let Some(manager) = refit {
            scope.spawn(move || {
                while ctx.refit_signal.wait() {
                    match manager.refit() {
                        Ok(generation) => {
                            ctx.cell.publish(generation);
                        }
                        Err(e) => {
                            // The old generation keeps serving; the
                            // failure is visible in metrics and the
                            // next trigger firing retries over the
                            // same (still-growing) dataset.
                            let obs = soulmate_obs::global();
                            obs.incr("serve.refit.errors", 1);
                            drop(e);
                        }
                    }
                }
            });
        }
        for _ in 0..config.threads.max(1) {
            let queue = &queue;
            scope.spawn(move || {
                // Drain until the queue closes; `pop` returning `None`
                // guarantees nothing accepted is left behind.
                while let Some(stream) = queue.pop() {
                    handle_connection(ctx, stream);
                }
            });
        }

        for incoming in listener.incoming() {
            // Re-checked after every accept: the shutdown worker pokes
            // the listener with a loopback connection precisely so this
            // check runs (the poke connection itself is dropped here).
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            if let Err(rejected) = queue.try_push(stream) {
                // Backpressure: the queue is full, so shed immediately
                // with 503 instead of queueing unbounded latency.
                reject_overloaded(rejected);
            }
        }
        // Drain the accept backlog: a connection fully established
        // before the shutdown flag rose still gets served (or an
        // explicit 503) instead of a silent reset when the listener
        // drops. Non-blocking accept empties exactly what is pending.
        listener.set_nonblocking(true).ok();
        while let Ok((stream, _)) = listener.accept() {
            if let Err(rejected) = queue.try_push(stream) {
                reject_overloaded(rejected);
            }
        }
        queue.close();
        refit_signal.stop();
    });
    Ok(())
}

/// Shed one connection the queue refused: count it and answer an
/// explicit 503 `overloaded` — both at the accept door and during the
/// post-shutdown backlog sweep, a refused client hears why instead of
/// getting a silent reset. The write is best-effort under a short
/// timeout so a slow client cannot stall the accept loop.
fn reject_overloaded(mut stream: TcpStream) {
    let obs = soulmate_obs::global();
    obs.incr("serve.rejected_overload", 1);
    obs.incr("serve.responses.5xx", 1);
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    write_response(
        &mut stream,
        503,
        "application/json",
        &protocol::error_body("overloaded", "accept queue is full; retry"),
    )
    .ok();
}

/// Serve one connection end to end. Every failure path writes an HTTP
/// error response (best-effort — the client may already be gone) and
/// returns; nothing here panics.
fn handle_connection(ctx: &Ctx<'_>, mut stream: TcpStream) {
    let obs = soulmate_obs::global();
    let config = ctx.config;
    stream.set_read_timeout(Some(config.read_timeout)).ok();
    stream.set_write_timeout(Some(config.read_timeout)).ok();
    stream.set_nodelay(true).ok();

    let request = match read_request(&mut stream, config.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::BadRequest(why)) => {
            obs.incr("serve.requests", 1);
            respond(&mut stream, 400, &protocol::error_body("parse", &why));
            return;
        }
        Err(HttpError::PayloadTooLarge { declared, limit }) => {
            obs.incr("serve.requests", 1);
            respond(
                &mut stream,
                413,
                &protocol::error_body(
                    "payload_too_large",
                    &format!("declared body of {declared} bytes exceeds limit of {limit}"),
                ),
            );
            return;
        }
        Err(HttpError::NotImplemented(why)) => {
            obs.incr("serve.requests", 1);
            respond(
                &mut stream,
                501,
                &protocol::error_body("not_implemented", &why),
            );
            return;
        }
        // The socket died; there is no one left to answer.
        Err(HttpError::Io(_)) => return,
    };

    obs.incr("serve.requests", 1);
    let started = Instant::now();
    // RFC 7230 §5.3.1: the request target is path + optional query
    // (+ fragment from sloppy clients). Routes match on the path
    // component only — `POST /link?verbose=1` must reach `/link`, not
    // 404. The raw target is kept for the 404 message so a client sees
    // exactly what it sent.
    let route = request.path.split(['?', '#']).next().unwrap_or("");
    match (request.method.as_str(), route) {
        ("POST", "/link") => handle_link(ctx, &mut stream, &request),
        ("POST", "/ingest") => handle_ingest(ctx, &mut stream, &request),
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"authors\":{},\"generation\":{},\"threads\":{},\"queue_depth\":{}}}",
                ctx.cell.current().n_authors(),
                ctx.cell.generation(),
                config.threads,
                config.queue_depth
            );
            respond(&mut stream, 200, &body);
        }
        ("GET", "/metrics") => {
            let body = obs.to_json();
            respond(&mut stream, 200, &body);
        }
        ("POST", "/shutdown") => {
            respond(&mut stream, 202, "{\"status\":\"draining\"}");
            ctx.shutdown.store(true, Ordering::Release);
            // Poke the blocking accept() so it observes the flag. The
            // accept loop drops this connection without queueing it.
            // A wildcard bind (0.0.0.0 / ::) is not a connectable
            // destination everywhere, so poke via loopback on the bound
            // port instead.
            let poke = if ctx.local.ip().is_unspecified() {
                let loopback: std::net::IpAddr = match ctx.local {
                    SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                };
                SocketAddr::new(loopback, ctx.local.port())
            } else {
                ctx.local
            };
            TcpStream::connect(poke).ok();
        }
        (_, "/link" | "/ingest" | "/healthz" | "/metrics" | "/shutdown") => {
            respond(
                &mut stream,
                405,
                &protocol::error_body(
                    "method_not_allowed",
                    &format!("{} is not supported on {route}", request.method),
                ),
            );
        }
        _ => {
            respond(
                &mut stream,
                404,
                &protocol::error_body("not_found", &format!("no route for {}", request.path)),
            );
        }
    }
    obs.record("serve.request.seconds", started.elapsed().as_secs_f64());
}

/// `POST /link`: parse the NDJSON batch, answer it with one
/// `link_query_authors` call (the IVF variant when the engine carries
/// an index, the quantized two-stage variant when the i8 fast path is
/// built), and render the outcomes in request order. The whole request
/// is served from one generation pinned up front — a swap mid-request
/// cannot tear it.
fn handle_link(ctx: &Ctx<'_>, stream: &mut TcpStream, request: &Request) {
    let obs = soulmate_obs::global();
    let config = ctx.config;
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => {
            respond(
                stream,
                400,
                &protocol::error_body("parse", "request body is not UTF-8"),
            );
            return;
        }
    };
    let queries = match protocol::parse_link_body(body) {
        Ok(q) => q,
        Err(why) => {
            respond(stream, 400, &protocol::error_body("parse", &why));
            return;
        }
    };
    if queries.is_empty() {
        respond(
            stream,
            400,
            &protocol::error_body("invalid", "empty batch: send one NDJSON query per line"),
        );
        return;
    }
    obs.record("serve.batch.size", queries.len() as f64);

    // Pin the generation for this whole request: the Arc keeps it
    // alive even if a swap retires it from the cell mid-query.
    let generation = ctx.cell.current();
    let engine = generation.engine();
    // The whole batch is one engine call — same contract as the CLI's
    // `--multi` path, so served responses stay bit-identical to it.
    let outcomes = if engine.index().is_some() {
        engine.link_query_authors_ivf(&queries, config.nprobe)
    } else if engine.quant_enabled() {
        engine.link_query_authors_quant(&queries, config.rerank)
    } else {
        engine.link_query_authors(&queries)
    };
    match outcomes {
        Ok(outcomes) => {
            let body = protocol::render_outcomes(&outcomes);
            write_ok_ndjson(stream, &body);
        }
        Err(e) => {
            respond(
                stream,
                protocol::status_for(&e),
                &protocol::error_body(protocol::error_kind(&e), &e.to_string()),
            );
        }
    }
}

/// `POST /ingest`: parse the NDJSON batch of new authors, grow the
/// current generation with the frozen-embedding delta path, publish
/// the grown generation, and (when a [`RefitManager`] is attached)
/// absorb the batch toward the next full refit.
fn handle_ingest(ctx: &Ctx<'_>, stream: &mut TcpStream, request: &Request) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(b) => b,
        Err(_) => {
            respond(
                stream,
                400,
                &protocol::error_body("parse", "request body is not UTF-8"),
            );
            return;
        }
    };
    let batches = match protocol::parse_ingest_body(body) {
        Ok(b) => b,
        Err(why) => {
            respond(stream, 400, &protocol::error_body("parse", &why));
            return;
        }
    };
    if batches.is_empty() {
        respond(
            stream,
            400,
            &protocol::error_body(
                "invalid",
                "empty batch: send one NDJSON author object per line",
            ),
        );
        return;
    }

    // Serialize clone-grow-publish: without this, two concurrent
    // ingests would both clone generation G and the later publish
    // would silently drop the earlier one's authors. Queries never
    // take this lock.
    let guard = ctx
        .ingest_lock
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let generation = ctx.cell.current();
    match generation.ingest(&batches) {
        Ok((next, outcomes)) => {
            let generation = ctx.cell.publish(next);
            // Absorb under the same lock so the refit dataset grows in
            // publish order; `true` means the rebuild trigger fired.
            let refit_scheduled = ctx.refit.is_some_and(|m| m.absorb(&batches));
            drop(guard);
            if refit_scheduled {
                ctx.refit_signal.request();
            }
            respond(
                stream,
                200,
                &protocol::render_ingest_response(&outcomes, generation, refit_scheduled),
            );
        }
        Err(e) => {
            drop(guard);
            respond(
                stream,
                protocol::status_for(&e),
                &protocol::error_body(protocol::error_kind(&e), &e.to_string()),
            );
        }
    }
}

/// Write a JSON response and count it in the status-class counters.
fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    count_status(status);
    write_response(stream, status, "application/json", body).ok();
}

fn write_ok_ndjson(stream: &mut TcpStream, body: &str) {
    count_status(200);
    write_response(stream, 200, "application/x-ndjson", body).ok();
}

fn count_status(status: u16) {
    let obs = soulmate_obs::global();
    match status {
        200..=299 => obs.incr("serve.responses.2xx", 1),
        400..=499 => obs.incr("serve.responses.4xx", 1),
        _ => obs.incr("serve.responses.5xx", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_rejects_when_full() {
        let q: ConnQueue<u32> = ConnQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        // Third connection has nowhere to go: backpressure.
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_drains_then_signals_exit() {
        let q: ConnQueue<u32> = ConnQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        // Push after close is refused...
        assert_eq!(q.try_push(3), Err(3));
        // ...but queued items still drain before the exit signal.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: std::sync::Arc<ConnQueue<u32>> = std::sync::Arc::new(ConnQueue::new(4));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q: std::sync::Arc<ConnQueue<u32>> = std::sync::Arc::new(ConnQueue::new(4));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(50));
        q.try_push(9).unwrap();
        assert_eq!(popper.join().unwrap(), Some(9));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q: ConnQueue<u32> = ConnQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
