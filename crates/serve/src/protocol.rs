//! The serve wire protocol: NDJSON link queries in, NDJSON outcomes or
//! a machine-readable error object out, plus the 1:1 mapping from
//! [`CoreError`] onto `(status, kind)` pairs.
//!
//! A `/link` request body holds one line per query author. Each line is
//! either a bare array of `[minute, "text"]` pairs or an object
//! `{"tweets": [[minute, "text"], ...]}` (the object form leaves room
//! for per-query options later). The response holds one line per query
//! in the same order, rendered deterministically — the e2e suite
//! asserts byte equality between served responses and a local render of
//! `link_query_authors` output, so this module is the single source of
//! truth for outcome formatting.

use soulmate_core::{CoreError, IngestBatch, IngestOutcome, QueryOutcome};
use soulmate_corpus::Timestamp;

/// Machine-readable kind for every [`CoreError`] variant — the wire
/// contract promised by DESIGN.md §15 (one kind per variant, no
/// collapsing, so clients can branch without parsing prose).
pub fn error_kind(e: &CoreError) -> &'static str {
    match e {
        CoreError::Temporal(_) => "temporal",
        CoreError::Embedding(_) => "embedding",
        CoreError::Cluster(_) => "cluster",
        CoreError::Graph(_) => "graph",
        CoreError::Linalg(_) => "linalg",
        CoreError::Retrieval(_) => "retrieval",
        CoreError::Invalid(_) => "invalid",
        CoreError::Io { .. } => "io",
        CoreError::Parse(_) => "parse",
        CoreError::Schema(_) => "schema",
        CoreError::Internal(_) => "internal",
    }
}

/// HTTP status for a [`CoreError`] escaping a query: the caller's fault
/// (rejected input) is 400, everything else is a 500 — the engine only
/// sees validated in-memory state at query time, so any other variant
/// there means the server itself is unhealthy.
pub fn status_for(e: &CoreError) -> u16 {
    match e {
        CoreError::Invalid(_) | CoreError::Parse(_) => 400,
        _ => 500,
    }
}

/// JSON type name for protocol error messages. `serde_json::Value` has
/// no such accessor of its own, so the protocol carries one — matching
/// on variants keeps it in sync with the `Value` data model at compile
/// time.
fn type_name(v: &serde_json::Value) -> &'static str {
    match v {
        serde_json::Value::Null => "null",
        serde_json::Value::Bool(_) => "bool",
        serde_json::Value::Number(_) => "number",
        serde_json::Value::String(_) => "string",
        serde_json::Value::Array(_) => "array",
        serde_json::Value::Object(_) => "object",
    }
}

/// Parse a `/link` NDJSON body into query-author tweet groups.
///
/// # Errors
/// A human-readable message naming the offending line; the server turns
/// it into a 400 with kind `parse`.
pub fn parse_link_body(body: &str) -> Result<Vec<Vec<(Timestamp, String)>>, String> {
    let mut queries = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = serde_json::from_str::<serde_json::Value>(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        let tweets_value = match value.get("tweets") {
            Some(t) => t,
            None if value.as_array().is_some() => &value,
            None => {
                return Err(format!(
                    "line {}: expected a tweet array or an object with a `tweets` key, got {}",
                    i + 1,
                    type_name(&value)
                ))
            }
        };
        let Some(tweets) = tweets_value.as_array() else {
            return Err(format!(
                "line {}: `tweets` must be an array, got {}",
                i + 1,
                type_name(tweets_value)
            ));
        };
        let mut group = Vec::with_capacity(tweets.len());
        for (j, tweet) in tweets.iter().enumerate() {
            group.push(
                parse_tweet(tweet)
                    .map_err(|why| format!("line {}, tweet {}: {why}", i + 1, j + 1))?,
            );
        }
        queries.push(group);
    }
    Ok(queries)
}

/// One tweet: `[minute, "text"]` or `"text"` (minute 0, matching the
/// CLI's tweets-file default).
fn parse_tweet(v: &serde_json::Value) -> Result<(Timestamp, String), String> {
    if let Some(text) = v.as_str() {
        return Ok((Timestamp(0), text.to_string()));
    }
    let Some(pair) = v.as_array() else {
        return Err(format!(
            "expected `[minute, \"text\"]` or a bare string, got {}",
            type_name(v)
        ));
    };
    match (pair.first(), pair.get(1), pair.len()) {
        (Some(minute), Some(text), 2) => {
            let minute = minute
                .as_i64()
                .and_then(|m| u32::try_from(m).ok())
                .ok_or_else(|| format!("minute must be a non-negative integer, got {minute}"))?;
            let text = text
                .as_str()
                .ok_or_else(|| format!("text must be a string, got {}", type_name(text)))?;
            Ok((Timestamp(minute), text.to_string()))
        }
        _ => Err(format!("expected exactly [minute, \"text\"], got {v}")),
    }
}

/// Parse a `/ingest` NDJSON body into new-author batches.
///
/// One line per new author: `{"handle": "name", "tweets": [[minute,
/// "text"], ...]}`. The handle is mandatory (it becomes the author's
/// identity in the grown snapshot) and tweets use the same pair/string
/// forms as `/link` lines.
///
/// # Errors
/// A human-readable message naming the offending line; the server turns
/// it into a 400 with kind `parse`.
pub fn parse_ingest_body(body: &str) -> Result<Vec<IngestBatch>, String> {
    let mut batches = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = serde_json::from_str::<serde_json::Value>(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        let Some(handle) = value.get("handle").and_then(|h| h.as_str()) else {
            return Err(format!(
                "line {}: expected an object with a string `handle` key",
                i + 1
            ));
        };
        if handle.is_empty() {
            return Err(format!("line {}: `handle` must be non-empty", i + 1));
        }
        let Some(tweets) = value.get("tweets").and_then(|t| t.as_array()) else {
            return Err(format!(
                "line {}: expected a `tweets` array alongside `handle`",
                i + 1
            ));
        };
        let mut group = Vec::with_capacity(tweets.len());
        for (j, tweet) in tweets.iter().enumerate() {
            group.push(
                parse_tweet(tweet)
                    .map_err(|why| format!("line {}, tweet {}: {why}", i + 1, j + 1))?,
            );
        }
        batches.push(IngestBatch {
            handle: handle.to_string(),
            tweets: group,
        });
    }
    Ok(batches)
}

/// Render the `/ingest` response: one JSON object carrying the
/// generation that now serves the new authors, whether a background
/// refit was scheduled by this batch, and one entry per ingested
/// author in request order.
pub fn render_ingest_response(
    outcomes: &[IngestOutcome],
    generation: u64,
    refit_scheduled: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\"generation\":");
    out.push_str(&generation.to_string());
    out.push_str(",\"refit_scheduled\":");
    out.push_str(if refit_scheduled { "true" } else { "false" });
    out.push_str(",\"ingested\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"author_index\":");
        out.push_str(&o.author_index.to_string());
        out.push_str(",\"handle\":\"");
        out.push_str(&escape(&o.handle));
        out.push_str("\",\"n_tweets\":");
        out.push_str(&o.n_tweets.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render outcomes as NDJSON, one line per query, trailing newline.
///
/// Float formatting uses Rust's shortest-roundtrip `Display`, so a
/// client parsing a similarity back to `f32` recovers the exact bits
/// the engine produced; non-finite values (NaN similarity of an
/// unreachable author) render as `null` because JSON has no NaN.
pub fn render_outcomes(outcomes: &[QueryOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str("{\"query_index\":");
        out.push_str(&o.query_index.to_string());
        out.push_str(",\"subgraph\":[");
        push_joined(&mut out, o.subgraph.iter().map(usize::to_string));
        out.push_str("],\"subgraph_avg_weight\":");
        push_f32(&mut out, o.subgraph_avg_weight);
        out.push_str(",\"similarities\":[");
        push_joined(&mut out, o.similarities.iter().map(|&s| f32_json(s)));
        out.push_str("],\"content_vector\":[");
        push_joined(&mut out, o.content_vector.iter().map(|&s| f32_json(s)));
        out.push_str("],\"concept_vector\":[");
        push_joined(&mut out, o.concept_vector.iter().map(|&s| f32_json(s)));
        out.push_str("]}\n");
    }
    out
}

fn push_joined(out: &mut String, items: impl Iterator<Item = String>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
}

fn f32_json(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_f32(out: &mut String, v: f32) {
    out.push_str(&f32_json(v));
}

/// Render one protocol error object (single line, no trailing newline).
pub fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
        escape(kind),
        escape(message)
    )
}

/// Minimal JSON string escaping for error messages (quotes, backslash,
/// control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // A char is a Unicode scalar value (max 0x10FFFF), so it
            // always fits u32 losslessly.
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_line_forms_and_skips_blanks() {
        let body = "[[5, \"hello world\"], [9, \"more text\"]]\n\n{\"tweets\": [[0, \"obj form\"], \"bare string\"]}\n";
        let queries = parse_link_body(body).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(
            queries[0],
            vec![
                (Timestamp(5), "hello world".to_string()),
                (Timestamp(9), "more text".to_string()),
            ]
        );
        assert_eq!(
            queries[1],
            vec![
                (Timestamp(0), "obj form".to_string()),
                (Timestamp(0), "bare string".to_string()),
            ]
        );
    }

    #[test]
    fn malformed_lines_name_their_position() {
        let err = parse_link_body("[[1, \"ok\"]]\nnot json").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
        let err = parse_link_body("{\"tweets\": 7}").unwrap_err();
        assert!(err.contains("`tweets` must be an array"), "{err}");
        let err = parse_link_body("[[-3, \"negative minute\"]]").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = parse_link_body("[[1, 2, 3]]").unwrap_err();
        assert!(err.contains("tweet 1"), "{err}");
        let err = parse_link_body("true").unwrap_err();
        assert!(err.contains("expected a tweet array"), "{err}");
    }

    #[test]
    fn parses_ingest_lines_and_names_bad_ones() {
        let body = "{\"handle\": \"alice\", \"tweets\": [[3, \"hi there\"], \"bare\"]}\n\n{\"handle\": \"bob\", \"tweets\": []}\n";
        let batches = parse_ingest_body(body).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].handle, "alice");
        assert_eq!(
            batches[0].tweets,
            vec![
                (Timestamp(3), "hi there".to_string()),
                (Timestamp(0), "bare".to_string()),
            ]
        );
        assert_eq!(batches[1].handle, "bob");
        assert!(batches[1].tweets.is_empty());

        let err = parse_ingest_body("[[1, \"no handle\"]]").unwrap_err();
        assert!(err.contains("`handle`"), "{err}");
        let err = parse_ingest_body("{\"handle\": \"\", \"tweets\": []}").unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
        let err = parse_ingest_body("{\"handle\": \"x\"}").unwrap_err();
        assert!(err.contains("`tweets` array"), "{err}");
        let err = parse_ingest_body("{\"handle\": \"x\", \"tweets\": [[1, 2, 3]]}").unwrap_err();
        assert!(err.starts_with("line 1, tweet 1"), "{err}");
    }

    #[test]
    fn ingest_response_is_valid_json_with_escaped_handles() {
        let outcomes = vec![
            IngestOutcome {
                author_index: 20,
                handle: "quo\"ted".to_string(),
                n_tweets: 5,
            },
            IngestOutcome {
                author_index: 21,
                handle: "plain".to_string(),
                n_tweets: 2,
            },
        ];
        let body = render_ingest_response(&outcomes, 7, true);
        let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
        assert_eq!(v.get("generation").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(
            v.get("refit_scheduled").and_then(|x| x.as_bool()),
            Some(true)
        );
        let ingested = v.get("ingested").and_then(|x| x.as_array()).unwrap();
        assert_eq!(ingested.len(), 2);
        assert_eq!(
            ingested[0].get("handle").and_then(|h| h.as_str()),
            Some("quo\"ted")
        );
        assert_eq!(
            ingested[1].get("author_index").and_then(|x| x.as_u64()),
            Some(21)
        );
    }

    #[test]
    fn rendered_outcomes_roundtrip_bit_exact() {
        let outcome = QueryOutcome {
            query_index: 4,
            subgraph: vec![1, 2, 4],
            subgraph_avg_weight: 0.62417,
            content_vector: vec![0.1, -2.5e-7],
            concept_vector: vec![f32::NAN],
            similarities: vec![0.25, 1.0 / 3.0, f32::INFINITY],
        };
        let text = render_outcomes(&[outcome.clone()]);
        assert!(text.ends_with('\n'));
        let v = serde_json::from_str::<serde_json::Value>(text.trim()).unwrap();
        assert_eq!(v.get("query_index").and_then(|x| x.as_i64()), Some(4));
        let sims = v.get("similarities").and_then(|x| x.as_array()).unwrap();
        // Finite floats roundtrip to the exact same bits; non-finite
        // became null.
        let s1 = sims[1].as_f64().unwrap() as f32;
        assert_eq!(s1.to_bits(), (1.0f32 / 3.0).to_bits());
        assert!(sims[2].is_null());
        let cvec = v.get("concept_vector").and_then(|x| x.as_array()).unwrap();
        assert!(cvec[0].is_null());
    }

    #[test]
    fn every_core_error_has_a_distinct_kind_and_a_status() {
        let errors = [
            CoreError::Invalid("x".into()),
            CoreError::Parse("x".into()),
            CoreError::Schema("x".into()),
            CoreError::Internal("x"),
        ];
        let kinds: Vec<&str> = errors.iter().map(error_kind).collect();
        assert_eq!(kinds, vec!["invalid", "parse", "schema", "internal"]);
        assert_eq!(status_for(&errors[0]), 400);
        assert_eq!(status_for(&errors[1]), 400);
        assert_eq!(status_for(&errors[2]), 500);
        assert_eq!(status_for(&errors[3]), 500);
    }

    #[test]
    fn error_bodies_escape_quotes() {
        let body = error_body("parse", "bad \"quote\"\nnewline");
        let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(|m| m.as_str())
            .unwrap()
            .to_string();
        assert_eq!(msg, "bad \"quote\"\nnewline");
    }
}
