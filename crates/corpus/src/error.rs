//! Error type for corpus generation and serialization.

use std::fmt;

/// Errors raised while generating, encoding, or (de)serializing datasets.
#[derive(Debug)]
pub enum CorpusError {
    /// Configuration values are inconsistent (message explains).
    InvalidConfig(String),
    /// An I/O failure during import/export.
    Io(std::io::Error),
    /// Malformed JSONL during import.
    Parse(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
            CorpusError::Io(e) => write!(f, "I/O error: {e}"),
            CorpusError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}
