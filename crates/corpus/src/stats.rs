//! Corpus statistics: word-pair co-occurrence distributions over temporal
//! facets (the paper's Fig. 1 observation).

use crate::dataset::EncodedCorpus;
use soulmate_text::WordId;

/// Distribution of a word pair's tweet-level co-occurrences over the 24
/// hours of the day. Entry `h` is the fraction of all co-occurrences that
/// happen in hour `h` (all-zero when the pair never co-occurs).
pub fn pair_cooccurrence_by_hour(corpus: &EncodedCorpus, w1: WordId, w2: WordId) -> [f32; 24] {
    let mut counts = [0u32; 24];
    for t in &corpus.tweets {
        if t.words.contains(&w1) && t.words.contains(&w2) {
            // hour() ∈ 0..24: u32→usize is widening and indexes the 24 bins
            counts[t.timestamp.hour() as usize] += 1;
        }
    }
    normalize(&counts)
}

/// Distribution of a word pair's co-occurrences over the four seasons.
pub fn pair_cooccurrence_by_season(corpus: &EncodedCorpus, w1: WordId, w2: WordId) -> [f32; 4] {
    let mut counts = [0u32; 4];
    for t in &corpus.tweets {
        if t.words.contains(&w1) && t.words.contains(&w2) {
            counts[t.timestamp.season().index()] += 1;
        }
    }
    normalize(&counts)
}

/// Distribution of a word pair's co-occurrences over the seven weekdays
/// (Monday first).
pub fn pair_cooccurrence_by_weekday(corpus: &EncodedCorpus, w1: WordId, w2: WordId) -> [f32; 7] {
    let mut counts = [0u32; 7];
    for t in &corpus.tweets {
        if t.words.contains(&w1) && t.words.contains(&w2) {
            // day_of_week() ∈ 0..7: u32→usize is widening and indexes the 7 bins
            counts[t.timestamp.day_of_week() as usize] += 1;
        }
    }
    normalize(&counts)
}

fn normalize<const N: usize>(counts: &[u32; N]) -> [f32; N] {
    let total: u32 = counts.iter().sum();
    let mut out = [0.0f32; N];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(counts) {
            *o = c as f32 / total as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use soulmate_text::TokenizerConfig;

    #[test]
    fn morning_concept_pair_peaks_in_morning_hours() {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        let lex = &d.ground_truth.lexicon;
        // Concept 0 peaks at hour 8 on weekdays; its head and first base
        // form co-occur constantly.
        let h = enc.vocab.id(&lex.concepts[0].head).unwrap();
        let e = enc.vocab.id(&lex.concepts[0].base_forms[0]).unwrap();
        let dist = pair_cooccurrence_by_hour(&enc, h, e);
        let morning: f32 = dist[6..=11].iter().sum();
        let night: f32 = dist[0..=4].iter().sum();
        assert!(
            morning > night * 2.0,
            "expected morning peak, got morning={morning} night={night}"
        );
        let total: f32 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn seasonal_pair_prefers_its_season() {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        let lex = &d.ground_truth.lexicon;
        // Concept 1 is seasonal (season index 1 = autumn).
        let h = enc.vocab.id(&lex.concepts[1].head).unwrap();
        let e = enc.vocab.id(&lex.concepts[1].base_forms[0]).unwrap();
        let dist = pair_cooccurrence_by_season(&enc, h, e);
        assert!(dist[1] > 0.4, "seasonal skew missing: {dist:?}");
    }

    #[test]
    fn never_cooccurring_pair_is_all_zero() {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        // A word with itself... pick two ids that never share a tweet by
        // using an id far outside the vocabulary.
        let dist = pair_cooccurrence_by_hour(&enc, 999_999, 999_998);
        assert!(dist.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn weekday_distribution_sums_to_one() {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        let lex = &d.ground_truth.lexicon;
        let h = enc.vocab.id(&lex.concepts[0].head).unwrap();
        let e = enc.vocab.id(&lex.concepts[0].base_forms[0]).unwrap();
        let dist = pair_cooccurrence_by_weekday(&enc, h, e);
        let total: f32 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
        // Concept 0 is weekday-heavy.
        let wd: f32 = dist[..5].iter().sum();
        assert!(wd > 0.7, "weekday mass only {wd}");
    }
}
