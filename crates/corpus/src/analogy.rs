//! Analogy question suite derived from the generated lexicon.
//!
//! Substitutes the Google word-analogy test of Section 5.2.1: questions of
//! the form *"a is to b as c is to ?"*. Two relation families come straight
//! from the lexicon's planted structure:
//!
//! * **mode** (syntactic-like): `base_i : variant_i :: base_j : variant_j` —
//!   the base→variant shift is signalled by shared contextual markers, so a
//!   good embedding learns it as a consistent direction;
//! * **head** (semantic-like): `entity_i^c : head_c :: entity_j^{c'} :
//!   head_{c'}` — the entity→head shift is the "topical anchor" direction
//!   within each concept.
//!
//! Questions are only emitted when all four words survived vocabulary
//! pruning, mirroring how the paper's corpus "suffices the words for only
//! ≈7K questions" of the original 20K.

use crate::lexicon::Lexicon;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use soulmate_text::{Vocabulary, WordId};

/// One analogy question: `a : b :: c : expected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalogyQuestion {
    /// First pair, left.
    pub a: WordId,
    /// First pair, right.
    pub b: WordId,
    /// Second pair, left.
    pub c: WordId,
    /// The answer the model must produce.
    pub expected: WordId,
}

/// Build the analogy suite for `lexicon` against `vocab`.
///
/// Generates up to `max_questions` questions, balanced between the two
/// relation families, shuffled deterministically by `seed`.
pub fn build_analogy_suite(
    lexicon: &Lexicon,
    vocab: &Vocabulary,
    max_questions: usize,
    seed: u64,
) -> Vec<AnalogyQuestion> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut questions = Vec::new();

    // Collect in-vocabulary (base, variant) pairs and (entity, head) pairs.
    let mut mode_pairs: Vec<(WordId, WordId)> = Vec::new();
    let mut head_pairs: Vec<(WordId, WordId)> = Vec::new();
    for spec in &lexicon.concepts {
        let head_id = vocab.id(&spec.head);
        for (b, v) in spec.base_forms.iter().zip(&spec.variant_forms) {
            let bid = vocab.id(b);
            let vid = vocab.id(v);
            if let (Some(bid), Some(vid)) = (bid, vid) {
                mode_pairs.push((bid, vid));
            }
            if let (Some(bid), Some(hid)) = (bid, head_id) {
                head_pairs.push((bid, hid));
            }
        }
    }
    mode_pairs.shuffle(&mut rng);
    head_pairs.shuffle(&mut rng);

    let per_family = max_questions / 2;
    emit_cross_questions(&mode_pairs, per_family, &mut questions);
    emit_cross_questions(
        &head_pairs,
        max_questions - questions.len().min(max_questions),
        &mut questions,
    );
    questions.truncate(max_questions);
    questions.shuffle(&mut rng);
    questions
}

/// Pair up consecutive relation pairs into questions `p[i] :: p[i+1]`,
/// skipping degenerate combinations (shared words).
fn emit_cross_questions(pairs: &[(WordId, WordId)], limit: usize, out: &mut Vec<AnalogyQuestion>) {
    let mut emitted = 0usize;
    'outer: for stride in 1..pairs.len().max(1) {
        for i in 0..pairs.len() {
            if emitted >= limit {
                break 'outer;
            }
            let j = (i + stride) % pairs.len();
            if i == j {
                continue;
            }
            let (a, b) = pairs[i];
            let (c, d) = pairs[j];
            // All four words must be distinct for a well-posed question.
            if a == c || a == d || b == c || b == d {
                continue;
            }
            out.push(AnalogyQuestion {
                a,
                b,
                c,
                expected: d,
            });
            emitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use soulmate_text::TokenizerConfig;

    fn suite() -> (Vec<AnalogyQuestion>, Vocabulary) {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        let qs = build_analogy_suite(&d.ground_truth.lexicon, &enc.vocab, 500, 7);
        (qs, enc.vocab)
    }

    #[test]
    fn suite_is_nonempty_and_bounded() {
        let (qs, _) = suite();
        assert!(!qs.is_empty());
        assert!(qs.len() <= 500);
    }

    #[test]
    fn all_question_words_in_vocab_and_distinct() {
        let (qs, vocab) = suite();
        for q in &qs {
            for id in [q.a, q.b, q.c, q.expected] {
                assert!(vocab.word(id).is_some());
            }
            assert_ne!(q.a, q.c);
            assert_ne!(q.b, q.expected);
            assert_ne!(q.a, q.expected);
            assert_ne!(q.b, q.c);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        let q1 = build_analogy_suite(&d.ground_truth.lexicon, &enc.vocab, 100, 7);
        let q2 = build_analogy_suite(&d.ground_truth.lexicon, &enc.vocab, 100, 7);
        assert_eq!(q1, q2);
    }

    #[test]
    fn mode_questions_relate_base_to_variant() {
        let (qs, vocab) = suite();
        // At least some questions must be of the base→variant family:
        // b ends with "ex" iff it is a variant form.
        let mode_q = qs
            .iter()
            .filter(|q| vocab.word(q.b).is_some_and(|w| w.ends_with("ex")))
            .count();
        assert!(mode_q > 0, "no mode-family questions found");
    }

    #[test]
    fn empty_vocab_yields_empty_suite() {
        let lex = Lexicon::build(2, 2, 1, 0);
        let vocab = Vocabulary::new();
        assert!(build_analogy_suite(&lex, &vocab, 100, 0).is_empty());
    }

    #[test]
    fn max_questions_zero_yields_empty() {
        let (_, _) = suite();
        let d = generate(&GeneratorConfig::small()).unwrap();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        assert!(build_analogy_suite(&d.ground_truth.lexicon, &enc.vocab, 0, 7).is_empty());
    }
}
