//! The generated lexicon: concepts, relational word forms, markers and
//! noise variants.
//!
//! Words are synthesized from consonant-vowel syllables so they are unique,
//! pronounceable and collision-free at any configured scale. The lexicon is
//! *structured*:
//!
//! * every concept owns a **head word** (appears in most of its tweets — a
//!   topical anchor like "beach" for a beach concept);
//! * every concept owns `entities_per_concept` **entity stems**, each with a
//!   **base** and a **variant** form (`…a` / `…en` suffixes). Which form a
//!   tweet uses is governed by its *mode*, signalled by shared mode-marker
//!   words — this plants the linear regularity that word-analogy tests
//!   (Fig. 8) probe;
//! * a pool of shared **marker words** per mode (base/variant) common to all
//!   concepts;
//! * per-word **noise variants**: an abbreviation (prefix clip) and a
//!   misspelling (vowel swap), injected by the generator at a configurable
//!   rate to reproduce microblog noisiness (Challenge 1).

use serde::{Deserialize, Serialize};

/// A single concept's vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptSpec {
    /// Human-readable concept label ("concept03").
    pub label: String,
    /// The topical anchor word.
    pub head: String,
    /// Entity base forms.
    pub base_forms: Vec<String>,
    /// Entity variant forms (same length as `base_forms`).
    pub variant_forms: Vec<String>,
}

impl ConceptSpec {
    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.base_forms.len()
    }
}

/// The complete generated lexicon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lexicon {
    /// One spec per concept.
    pub concepts: Vec<ConceptSpec>,
    /// Marker words signalling base mode.
    pub base_markers: Vec<String>,
    /// Marker words signalling variant mode.
    pub variant_markers: Vec<String>,
    /// Filler words (near-stopword chatter, shared by all concepts).
    pub fillers: Vec<String>,
    /// Homograph words: each is shared by *two* concepts with different
    /// temporal profiles (paper Challenge 2 — "word proximity patterns
    /// alter in various temporal facets"). Time-sliced embeddings can
    /// separate the senses; a single global embedding cannot.
    #[serde(default)]
    pub homographs: Vec<String>,
    /// The two concepts each homograph belongs to, parallel to
    /// `homographs`.
    #[serde(default)]
    pub homograph_concepts: Vec<(usize, usize)>,
}

impl Lexicon {
    /// Build a lexicon with `n_concepts` concepts, `entities_per_concept`
    /// entity stems each, `n_markers` markers per mode and `n_fillers`
    /// filler words.
    pub fn build(
        n_concepts: usize,
        entities_per_concept: usize,
        n_markers: usize,
        n_fillers: usize,
    ) -> Lexicon {
        Self::build_with_homographs(n_concepts, entities_per_concept, n_markers, n_fillers, 0)
    }

    /// Like [`Lexicon::build`], plus `n_homographs` words each shared by a
    /// pair of concepts `(h % C, (h + C/2) % C)` — pairs chosen to have
    /// different planted temporal profiles.
    pub fn build_with_homographs(
        n_concepts: usize,
        entities_per_concept: usize,
        n_markers: usize,
        n_fillers: usize,
        n_homographs: usize,
    ) -> Lexicon {
        let mut namer = WordNamer::new();
        let concepts = (0..n_concepts)
            .map(|c| {
                let head = namer.word(3);
                let mut base_forms = Vec::with_capacity(entities_per_concept);
                let mut variant_forms = Vec::with_capacity(entities_per_concept);
                for _ in 0..entities_per_concept {
                    let stem = namer.word(2);
                    base_forms.push(format!("{stem}a"));
                    variant_forms.push(format!("{stem}ex"));
                }
                ConceptSpec {
                    label: format!("concept{c:02}"),
                    head,
                    base_forms,
                    variant_forms,
                }
            })
            .collect();
        let base_markers = (0..n_markers).map(|_| namer.word(2)).collect();
        let variant_markers = (0..n_markers).map(|_| namer.word(2)).collect();
        let fillers = (0..n_fillers).map(|_| namer.word(2)).collect();
        let homographs: Vec<String> = (0..n_homographs).map(|_| namer.word(3)).collect();
        let homograph_concepts = (0..n_homographs)
            .map(|h| {
                let a = h % n_concepts;
                let b = (h + (n_concepts / 2).max(1)) % n_concepts;
                (a, b)
            })
            .collect();
        Lexicon {
            concepts,
            base_markers,
            variant_markers,
            fillers,
            homographs,
            homograph_concepts,
        }
    }

    /// Homographs belonging to concept `c` (either sense).
    pub fn homographs_of(&self, c: usize) -> Vec<&str> {
        self.homographs
            .iter()
            .zip(&self.homograph_concepts)
            .filter(|(_, &(a, b))| a == c || b == c)
            .map(|(w, _)| w.as_str())
            .collect()
    }

    /// Total distinct clean (noise-free) words in the lexicon.
    pub fn clean_vocab_size(&self) -> usize {
        self.concepts
            .iter()
            .map(|c| 1 + c.base_forms.len() + c.variant_forms.len())
            .sum::<usize>()
            + self.base_markers.len()
            + self.variant_markers.len()
            + self.fillers.len()
    }

    /// Abbreviated (clipped) noise variant of a word: first 3+ characters.
    /// "arvo"-style shortenings — a distinct rare token the tokenizer keeps.
    pub fn abbreviate(word: &str) -> String {
        let take = (word.len() / 2).max(3).min(word.len());
        word[..take].to_string()
    }

    /// Misspelled noise variant: swap the first two vowels' order (a common
    /// typo class); falls back to doubling the final character.
    pub fn misspell(word: &str) -> String {
        let chars: Vec<char> = word.chars().collect();
        let vowel_positions: Vec<usize> = chars
            .iter()
            .enumerate()
            .filter(|(_, c)| "aeiou".contains(**c))
            .map(|(i, _)| i)
            .collect();
        if vowel_positions.len() >= 2 && chars[vowel_positions[0]] != chars[vowel_positions[1]] {
            let mut out = chars.clone();
            out.swap(vowel_positions[0], vowel_positions[1]);
            out.into_iter().collect()
        } else {
            let mut out = word.to_string();
            if let Some(last) = word.chars().last() {
                out.push(last);
            }
            out
        }
    }
}

/// Deterministic pronounceable-word generator: enumerates CV-syllable
/// combinations in a fixed order so the n-th word is always the same.
struct WordNamer {
    counter: usize,
}

const CONSONANTS: &[char] = &[
    'b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z',
];
const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];

impl WordNamer {
    fn new() -> Self {
        WordNamer { counter: 0 }
    }

    /// Next unique word of `syllables` CV syllables, derived from an
    /// incrementing counter (mixed-radix digits → syllables). A terminal
    /// consonant keyed to the counter keeps words of different calls
    /// distinct even across syllable counts.
    fn word(&mut self, syllables: usize) -> String {
        let mut n = self.counter;
        self.counter += 1;
        let mut w = String::with_capacity(syllables * 2 + 1);
        for _ in 0..syllables {
            let c = CONSONANTS[n % CONSONANTS.len()];
            n /= CONSONANTS.len();
            let v = VOWELS[n % VOWELS.len()];
            n /= VOWELS.len();
            w.push(c);
            w.push(v);
        }
        // Tail consonant encodes any remaining counter bits plus the
        // syllable count, preventing prefix collisions like "ba" vs "ba+ba".
        w.push(CONSONANTS[(n + syllables) % CONSONANTS.len()]);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn build_produces_requested_counts() {
        let lex = Lexicon::build(4, 6, 5, 8);
        assert_eq!(lex.concepts.len(), 4);
        for c in &lex.concepts {
            assert_eq!(c.n_entities(), 6);
            assert_eq!(c.base_forms.len(), c.variant_forms.len());
        }
        assert_eq!(lex.base_markers.len(), 5);
        assert_eq!(lex.variant_markers.len(), 5);
        assert_eq!(lex.fillers.len(), 8);
        assert_eq!(lex.clean_vocab_size(), 4 * (1 + 12) + 5 + 5 + 8);
    }

    #[test]
    fn all_words_unique() {
        let lex = Lexicon::build(10, 20, 10, 20);
        let mut seen = HashSet::new();
        let mut all: Vec<&String> = Vec::new();
        for c in &lex.concepts {
            all.push(&c.head);
            all.extend(&c.base_forms);
            all.extend(&c.variant_forms);
        }
        all.extend(&lex.base_markers);
        all.extend(&lex.variant_markers);
        all.extend(&lex.fillers);
        for w in all {
            assert!(seen.insert(w.clone()), "duplicate word {w}");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = Lexicon::build(3, 4, 2, 2);
        let b = Lexicon::build(3, 4, 2, 2);
        assert_eq!(a.concepts[2].base_forms, b.concepts[2].base_forms);
        assert_eq!(a.fillers, b.fillers);
    }

    #[test]
    fn base_and_variant_share_a_stem() {
        let lex = Lexicon::build(1, 3, 1, 0);
        let c = &lex.concepts[0];
        for (b, v) in c.base_forms.iter().zip(&c.variant_forms) {
            assert!(b.ends_with('a'));
            assert!(v.ends_with("ex"));
            assert_eq!(&b[..b.len() - 1], &v[..v.len() - 2], "stems must match");
        }
    }

    #[test]
    fn words_are_lowercase_alphabetic() {
        let lex = Lexicon::build(5, 10, 5, 5);
        for c in &lex.concepts {
            for w in c.base_forms.iter().chain(&c.variant_forms).chain([&c.head]) {
                assert!(w.chars().all(|ch| ch.is_ascii_lowercase()), "bad word {w}");
                assert!(w.len() >= 3);
            }
        }
    }

    #[test]
    fn homographs_are_shared_by_two_distinct_concepts() {
        let lex = Lexicon::build_with_homographs(6, 4, 2, 2, 6);
        assert_eq!(lex.homographs.len(), 6);
        for &(a, b) in &lex.homograph_concepts {
            assert!(a < 6 && b < 6);
            assert_ne!(a, b, "homograph must span two concepts");
        }
        // homographs_of finds each word under both of its concepts.
        let w = lex.homographs[0].as_str();
        let (a, b) = lex.homograph_concepts[0];
        assert!(lex.homographs_of(a).contains(&w));
        assert!(lex.homographs_of(b).contains(&w));
        // Plain build has none.
        assert!(Lexicon::build(4, 4, 2, 2).homographs.is_empty());
    }

    #[test]
    fn abbreviation_is_shorter_prefix() {
        let abbr = Lexicon::abbreviate("afternoon");
        assert!(abbr.len() < "afternoon".len());
        assert!("afternoon".starts_with(&abbr));
        // Short words degrade gracefully.
        assert_eq!(Lexicon::abbreviate("bad"), "bad");
    }

    #[test]
    fn misspelling_differs_but_same_length_class() {
        let w = "baneto";
        let m = Lexicon::misspell(w);
        assert_ne!(m, w);
        // Vowel swap keeps length; doubling adds one.
        assert!(m.len() == w.len() || m.len() == w.len() + 1);
    }

    #[test]
    fn misspelling_fallback_for_single_vowel() {
        let m = Lexicon::misspell("bab");
        assert_eq!(m, "babb");
    }
}
