//! The synthetic corpus generator.
//!
//! Generation is concept-driven: every tweet first draws a latent concept
//! from its author's mixture, the concept's temporal profile then shapes
//! the timestamp (season → day-of-week → hour), and the concept's
//! vocabulary shapes the tokens. This plants exactly the regularities the
//! paper's pipeline is designed to detect:
//!
//! * authors of the same community share concepts → their tweets are
//!   conceptually (not necessarily textually) similar — Challenge 3. Each
//!   concept's entity vocabulary is split into two disjoint *registers*
//!   (synonym sets), and each author expresses a concept through one
//!   register: two authors can be about the same things with (almost) no
//!   shared words — the paper's Table 1 phenomenon;
//! * word proximity varies with hour/season — Challenge 2 / Fig. 1;
//! * noise variants replace clean words at a configurable rate —
//!   Challenge 1.

use crate::dataset::{Author, Dataset, GroundTruth, Tweet};
use crate::error::CorpusError;
use crate::lexicon::Lexicon;
use crate::time::Timestamp;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// All generator knobs. `Default` gives the laptop-scale configuration
/// documented in DESIGN.md §8.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds give byte-identical datasets.
    pub seed: u64,
    /// Number of authors (paper: ≈4000; default scaled to 400).
    pub n_authors: usize,
    /// Number of author communities.
    pub n_communities: usize,
    /// Number of latent concepts.
    pub n_concepts: usize,
    /// Entity stems per concept (controls vocabulary size).
    pub entities_per_concept: usize,
    /// Mode-marker words per mode.
    pub n_markers: usize,
    /// Shared filler words.
    pub n_fillers: usize,
    /// Mean tweets per author; actual counts are uniform in
    /// `[mean/2, 3*mean/2]`.
    pub mean_tweets_per_author: usize,
    /// Content words per tweet, uniform in this inclusive range.
    pub tweet_len: (usize, usize),
    /// Per-word probability of replacement by a noise variant
    /// (abbreviation or misspelling).
    pub noise_rate: f64,
    /// Probability that a tweet mixes in words from a second concept.
    pub ambiguity_rate: f64,
    /// Homograph words shared by concept pairs with different temporal
    /// profiles (Challenge 2's polysemy; 0 disables).
    pub n_homographs: usize,
    /// Probability a tweet contains its concept's head (anchor) word.
    /// Lower values leave more same-concept tweet pairs with zero lexical
    /// overlap (the Table 1 phenomenon); higher values strengthen the
    /// concept signal embeddings can learn from.
    pub head_rate: f64,
    /// Mode markers per tweet, inclusive range (the contextual signal
    /// behind the base:variant analogy relation).
    pub markers_per_tweet: (usize, usize),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            n_authors: 400,
            n_communities: 8,
            n_concepts: 12,
            entities_per_concept: 40,
            n_markers: 12,
            n_fillers: 30,
            mean_tweets_per_author: 200,
            tweet_len: (4, 11),
            noise_rate: 0.06,
            ambiguity_rate: 0.15,
            n_homographs: 12,
            head_rate: 0.85,
            markers_per_tweet: (1, 3),
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests and doc examples (~40 authors,
    /// a few thousand tweets).
    pub fn small() -> Self {
        GeneratorConfig {
            n_authors: 40,
            n_communities: 4,
            n_concepts: 6,
            entities_per_concept: 15,
            n_markers: 6,
            n_fillers: 10,
            mean_tweets_per_author: 60,
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<(), CorpusError> {
        if self.n_authors == 0 {
            return Err(CorpusError::InvalidConfig("n_authors must be > 0".into()));
        }
        if self.n_communities == 0 || self.n_communities > self.n_authors {
            return Err(CorpusError::InvalidConfig(
                "n_communities must be in 1..=n_authors".into(),
            ));
        }
        if self.n_concepts < 2 {
            return Err(CorpusError::InvalidConfig(
                "need at least 2 concepts".into(),
            ));
        }
        if self.entities_per_concept == 0 || self.n_markers == 0 {
            return Err(CorpusError::InvalidConfig(
                "entities_per_concept and n_markers must be > 0".into(),
            ));
        }
        if self.tweet_len.0 == 0 || self.tweet_len.0 > self.tweet_len.1 {
            return Err(CorpusError::InvalidConfig("bad tweet_len range".into()));
        }
        if !(0.0..=1.0).contains(&self.noise_rate)
            || !(0.0..=1.0).contains(&self.ambiguity_rate)
            || !(0.0..=1.0).contains(&self.head_rate)
        {
            return Err(CorpusError::InvalidConfig(
                "rates must lie in [0, 1]".into(),
            ));
        }
        if self.markers_per_tweet.0 > self.markers_per_tweet.1 {
            return Err(CorpusError::InvalidConfig(
                "bad markers_per_tweet range".into(),
            ));
        }
        Ok(())
    }
}

/// A concept's temporal behaviour. Derived deterministically from the
/// concept index so the planted structure is reproducible and documented.
#[derive(Debug, Clone)]
struct ConceptProfile {
    /// Relative mass on weekdays vs weekend days.
    weekday_weight: f32,
    weekend_weight: f32,
    /// Peak posting hour on weekdays; weekends shift 2h later.
    peak_hour: f32,
    /// Gaussian width of the hour window.
    hour_sigma: f32,
    /// Per-season weights (len 4).
    season_weights: [f32; 4],
}

impl ConceptProfile {
    /// Deterministic profile for concept `c` of `n` concepts.
    ///
    /// * day behaviour cycles weekday-heavy / weekend-heavy / uniform —
    ///   this is what makes Mon–Fri pool together and Sat/Sun pool
    ///   together in the day-slab experiment (Table 3);
    /// * hour peaks cycle morning / midday / evening / night (Fig. 4);
    /// * the first half of the concepts are seasonal, the rest uniform
    ///   (Fig. 1b's summer/winter contrast).
    fn for_concept(c: usize, n: usize) -> ConceptProfile {
        let (weekday_weight, weekend_weight) = match c % 3 {
            0 => (1.0, 0.15),
            1 => (0.2, 1.0),
            _ => (0.6, 0.6),
        };
        let peak_hour = match c % 4 {
            0 => 8.0,  // morning commute
            1 => 13.0, // midday
            2 => 19.0, // evening
            _ => 23.0, // night owls
        };
        let season_weights = if c < n / 2 {
            let mut w = [0.15f32; 4];
            w[c % 4] = 1.0;
            w
        } else {
            [0.5; 4]
        };
        ConceptProfile {
            weekday_weight,
            weekend_weight,
            peak_hour,
            hour_sigma: 2.5,
            season_weights,
        }
    }

    /// Unnormalized weight of posting at `hour` given weekend status; the
    /// weekend peak drifts two hours later (people sleep in).
    fn hour_weight(&self, hour: f32, weekend: bool) -> f32 {
        let peak = if weekend {
            (self.peak_hour + 2.0) % 24.0
        } else {
            self.peak_hour
        };
        // Circular distance on the 24h clock.
        let d = (hour - peak).abs();
        let d = d.min(24.0 - d);
        (-0.5 * (d / self.hour_sigma).powi(2)).exp() + 0.03
    }
}

/// Weighted index sampling.
fn sample_weighted<R: Rng>(weights: &[f32], rng: &mut R) -> usize {
    let total: f32 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Generate a full synthetic dataset.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] when the configuration is inconsistent.
pub fn generate(config: &GeneratorConfig) -> Result<Dataset, CorpusError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let lexicon = Lexicon::build_with_homographs(
        config.n_concepts,
        config.entities_per_concept,
        config.n_markers,
        config.n_fillers,
        config.n_homographs,
    );
    let profiles: Vec<ConceptProfile> = (0..config.n_concepts)
        .map(|c| ConceptProfile::for_concept(c, config.n_concepts))
        .collect();

    // ---- Communities: each mixes 2-3 concepts. Main concepts are spread
    // evenly over the concept range so no two communities collide even
    // when n_communities approaches n_concepts. ----
    let community_mixtures: Vec<Vec<f32>> = (0..config.n_communities)
        .map(|k| {
            let mut mix = vec![0.0f32; config.n_concepts];
            let main = (k * config.n_concepts) / config.n_communities;
            let second = (main + 1) % config.n_concepts;
            let third = (main + 3) % config.n_concepts;
            mix[main] += 0.55;
            mix[second] += 0.30;
            mix[third] += 0.15;
            mix
        })
        .collect();

    // ---- Authors. ----
    let mut authors = Vec::with_capacity(config.n_authors);
    let mut author_mixture = Vec::with_capacity(config.n_authors);
    let mut author_community = Vec::with_capacity(config.n_authors);
    for a in 0..config.n_authors {
        let community = a % config.n_communities;
        let mut mix = community_mixtures[community].clone();
        // Personal taste: jitter each weight ±30% and renormalize.
        for w in &mut mix {
            if *w > 0.0 {
                *w *= 1.0 + rng.gen_range(-0.3f32..0.3);
            }
        }
        let total: f32 = mix.iter().sum();
        for w in &mut mix {
            *w /= total;
        }
        authors.push(Author {
            // author index < n_authors ≪ u32::MAX
            id: a as u32,
            handle: format!("user{a:04}"),
        });
        author_mixture.push(mix);
        author_community.push(community);
    }

    // ---- Tweets. ----
    let mut tweets = Vec::new();
    let mut tweet_concept = Vec::new();
    for a in 0..config.n_authors {
        let mean = config.mean_tweets_per_author;
        let count = rng.gen_range((mean / 2).max(1)..=mean + mean / 2);
        for _ in 0..count {
            let concept = sample_weighted(&author_mixture[a], &mut rng);
            let profile = &profiles[concept];
            let timestamp = sample_timestamp(profile, &mut rng);
            let text = compose_tweet(
                &lexicon,
                a,
                concept,
                &author_mixture[a],
                timestamp,
                config,
                &mut rng,
            );
            // Heavy-tailed engagement: most tweets get nothing, a few go
            // minor-viral; head-word tweets of seasonal concepts trend a
            // little harder (popular topics attract engagement).
            let viral_boost = if concept < config.n_concepts / 2 {
                2.0
            } else {
                1.0
            };
            let u: f64 = rng.gen_range(0.0..1.0);
            // the 1e-4 floor caps the heavy tail at ~1e4·viral_boost ≪ u32::MAX
            let popularity = ((1.0 / (1.0 - u).max(1e-4) - 1.0) * viral_boost) as u32;
            tweets.push(Tweet {
                // generated tweet counts are far below u32::MAX
                id: tweets.len() as u32,
                author: a as u32, // a < n_authors ≪ u32::MAX
                timestamp,
                text,
                popularity,
            });
            tweet_concept.push(concept);
        }
    }

    Ok(Dataset {
        authors,
        tweets,
        ground_truth: GroundTruth {
            n_concepts: config.n_concepts,
            tweet_concept,
            author_mixture,
            author_community,
            lexicon,
        },
    })
}

/// Sample a timestamp from a concept's temporal profile:
/// season → week → day-of-week → hour → minute.
fn sample_timestamp<R: Rng>(profile: &ConceptProfile, rng: &mut R) -> Timestamp {
    let season = sample_weighted(&profile.season_weights, rng);
    // season index ∈ 0..4
    let week = season as u32 * 13 + rng.gen_range(0..13);
    // Day of week: 5 weekdays share weekday_weight, 2 days weekend_weight.
    let day_weights: Vec<f32> = (0..7)
        .map(|d| {
            if d < 5 {
                profile.weekday_weight
            } else {
                profile.weekend_weight
            }
        })
        .collect();
    // sample_weighted returns an index < day_weights.len() == 7
    let dow = sample_weighted(&day_weights, rng) as u32;
    let weekend = dow >= 5;
    let hour_weights: Vec<f32> = (0..24)
        .map(|h| profile.hour_weight(h as f32, weekend))
        .collect();
    // index < hour_weights.len() == 24
    let hour = sample_weighted(&hour_weights, rng) as u32;
    Timestamp::from_parts(week * 7 + dow, hour, rng.gen_range(0..60))
}

/// Compose one raw tweet text for `concept`.
fn compose_tweet<R: Rng>(
    lexicon: &Lexicon,
    author: usize,
    concept: usize,
    author_mix: &[f32],
    _timestamp: Timestamp,
    config: &GeneratorConfig,
    rng: &mut R,
) -> String {
    let spec = &lexicon.concepts[concept];
    // Mode decides which entity forms and markers this tweet uses; it is
    // the contextual signal behind the base:variant analogy regularity.
    let variant_mode = rng.gen_bool(0.5);
    // Register: which half of the concept's entity vocabulary this author
    // uses — a per-(author, concept) habit, deterministic so an author's
    // voice is consistent across their tweets.
    let register = register_of(author, concept);

    let n_content = rng.gen_range(config.tweet_len.0..=config.tweet_len.1);
    let mut words: Vec<String> = Vec::with_capacity(n_content + 6);

    // Topical anchor — infrequent enough that many same-concept tweet
    // pairs in different registers share no word at all.
    if rng.gen_bool(config.head_rate) {
        words.push(spec.head.clone());
    }
    // Entity words in the mode's form, drawn from the author's register
    // (one disjoint half of the concept vocabulary).
    let forms = if variant_mode {
        &spec.variant_forms
    } else {
        &spec.base_forms
    };
    let half = (forms.len() / 2).max(1);
    let (lo, hi) = if register == 0 || forms.len() < 2 {
        (0, half)
    } else {
        (half, forms.len())
    };
    for _ in 0..n_content {
        words.push(forms[rng.gen_range(lo..hi)].clone());
    }
    // 1-2 mode markers.
    let markers = if variant_mode {
        &lexicon.variant_markers
    } else {
        &lexicon.base_markers
    };
    for _ in 0..rng.gen_range(config.markers_per_tweet.0..=config.markers_per_tweet.1) {
        words.push(markers[rng.gen_range(0..markers.len())].clone());
    }
    // Conceptual ambiguity: borrow 1-2 words from another of the author's
    // concepts.
    if rng.gen_bool(config.ambiguity_rate) {
        let other = sample_weighted(author_mix, rng);
        if other != concept {
            let ospec = &lexicon.concepts[other];
            let oforms = if variant_mode {
                &ospec.variant_forms
            } else {
                &ospec.base_forms
            };
            let oreg = register_of(author, other);
            let ohalf = (oforms.len() / 2).max(1);
            let (olo, ohi) = if oreg == 0 || oforms.len() < 2 {
                (0, ohalf)
            } else {
                (ohalf, oforms.len())
            };
            for _ in 0..rng.gen_range(1..=2) {
                words.push(oforms[rng.gen_range(olo..ohi)].clone());
            }
        }
    }
    // Homographs: words this concept shares with a temporally different
    // concept — included often enough that their context distribution is
    // genuinely bimodal across time.
    let homographs = lexicon.homographs_of(concept);
    if !homographs.is_empty() && rng.gen_bool(0.35) {
        words.push(homographs[rng.gen_range(0..homographs.len())].to_string());
    }
    // Fillers.
    if !lexicon.fillers.is_empty() {
        for _ in 0..rng.gen_range(0..=2) {
            words.push(lexicon.fillers[rng.gen_range(0..lexicon.fillers.len())].clone());
        }
    }

    // Noise pass: abbreviation / misspelling / elongation.
    for w in &mut words {
        if rng.gen_bool(config.noise_rate) {
            *w = match rng.gen_range(0..3) {
                0 => Lexicon::abbreviate(w),
                1 => Lexicon::misspell(w),
                _ => elongate(w),
            };
        }
    }

    words.shuffle(rng);

    // Surface decorations the tokenizer must cope with.
    let mut parts: Vec<String> = Vec::with_capacity(words.len() + 3);
    if rng.gen_bool(0.15) {
        parts.push(format!("@user{:04}", rng.gen_range(0..2000)));
    }
    for (i, w) in words.iter().enumerate() {
        if i == 0 && rng.gen_bool(0.2) {
            parts.push(format!("#{w}"));
        } else if rng.gen_bool(0.05) {
            parts.push(w.to_uppercase());
        } else {
            parts.push(w.clone());
        }
    }
    if rng.gen_bool(0.08) {
        parts.push("https://t.co/abc123".to_string());
    }
    if rng.gen_bool(0.3) {
        parts.push(["!", "!!", "...", "?", ":)"][rng.gen_range(0..5)].to_string());
    }
    parts.join(" ")
}

/// The vocabulary register (0 or 1) author `a` uses for `concept` — a
/// deterministic habit, mixing the two ids so registers vary across both
/// axes.
fn register_of(author: usize, concept: usize) -> usize {
    (author
        .wrapping_mul(31)
        .wrapping_add(concept.wrapping_mul(17))
        .wrapping_add(author >> 3))
        % 2
}

/// Stretch the last vowel ("good" → "goooood") — normalized by the
/// tokenizer's run squeezing into a *different* token than the original,
/// i.e. genuine surface noise.
fn elongate(word: &str) -> String {
    if let Some(pos) = word.rfind(|c| "aeiou".contains(c)) {
        let c = word[pos..].chars().next().expect("vowel at pos");
        let mut out = String::with_capacity(word.len() + 4);
        out.push_str(&word[..pos]);
        for _ in 0..4 {
            out.push(c);
        }
        out.push_str(&word[pos + c.len_utf8()..]);
        out
    } else {
        word.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soulmate_text::TokenizerConfig;

    fn small() -> Dataset {
        generate(&GeneratorConfig::small()).expect("valid config")
    }

    #[test]
    fn generate_respects_author_count() {
        let d = small();
        assert_eq!(d.n_authors(), 40);
        assert_eq!(d.ground_truth.author_mixture.len(), 40);
        assert_eq!(d.ground_truth.author_community.len(), 40);
        assert_eq!(d.ground_truth.tweet_concept.len(), d.n_tweets());
    }

    #[test]
    fn every_author_tweets() {
        let d = small();
        for a in 0..d.n_authors() as u32 {
            assert!(!d.tweets_of(a).is_empty(), "author {a} has no tweets");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.n_tweets(), b.n_tweets());
        assert_eq!(a.tweets[10].text, b.tweets[10].text);
        assert_eq!(a.tweets[10].timestamp, b.tweets[10].timestamp);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = generate(&GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::small()
        })
        .unwrap();
        assert_ne!(a.tweets[0].text, b.tweets[0].text);
    }

    #[test]
    fn mixtures_are_distributions() {
        let d = small();
        for mix in &d.ground_truth.author_mixture {
            let s: f32 = mix.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "mixture sums to {s}");
            assert!(mix.iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn tweet_concepts_in_range() {
        let d = small();
        for &c in &d.ground_truth.tweet_concept {
            assert!(c < d.ground_truth.n_concepts);
        }
    }

    #[test]
    fn weekday_concepts_post_mostly_on_weekdays() {
        let d = small();
        // Concept 0 is weekday-heavy (profile c % 3 == 0).
        let (mut wd, mut we) = (0usize, 0usize);
        for (t, &c) in d.tweets.iter().zip(&d.ground_truth.tweet_concept) {
            if c == 0 {
                if t.timestamp.is_weekend() {
                    we += 1;
                } else {
                    wd += 1;
                }
            }
        }
        assert!(wd > we * 3, "weekday concept skew missing: wd={wd} we={we}");
    }

    #[test]
    fn morning_concepts_peak_in_the_morning() {
        let d = small();
        // Concept 0 peaks at hour 8 on weekdays.
        let mut hours = [0usize; 24];
        for (t, &c) in d.tweets.iter().zip(&d.ground_truth.tweet_concept) {
            if c == 0 && !t.timestamp.is_weekend() {
                hours[t.timestamp.hour() as usize] += 1;
            }
        }
        let morning: usize = hours[6..=10].iter().sum();
        let night: usize = hours[0..=4].iter().sum();
        assert!(
            morning > night * 2,
            "morning skew missing: morning={morning} night={night}"
        );
    }

    #[test]
    fn seasonal_concept_prefers_its_season() {
        let d = small();
        // Concept 0 < n/2 is seasonal with season 0 (summer).
        let mut per_season = [0usize; 4];
        for (t, &c) in d.tweets.iter().zip(&d.ground_truth.tweet_concept) {
            if c == 0 {
                per_season[t.timestamp.season().index()] += 1;
            }
        }
        assert!(per_season[0] > per_season[2] * 2, "{per_season:?}");
    }

    #[test]
    fn corpus_encodes_with_reasonable_vocab() {
        let d = small();
        let enc = d.encode(&TokenizerConfig::default(), 2);
        assert!(enc.vocab.len() > 50, "vocab too small: {}", enc.vocab.len());
        assert!(enc.total_tokens() > 1000);
        // Clean lexicon words dominate: the heads must survive pruning.
        for c in &d.ground_truth.lexicon.concepts {
            assert!(
                enc.vocab.id(&c.head).is_some(),
                "head {} missing from vocab",
                c.head
            );
        }
    }

    #[test]
    fn noise_produces_out_of_lexicon_tokens() {
        let d = small();
        let enc = d.encode(&TokenizerConfig::default(), 1);
        let lex = &d.ground_truth.lexicon;
        let mut clean: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for c in &lex.concepts {
            clean.insert(&c.head);
            clean.extend(c.base_forms.iter().map(String::as_str));
            clean.extend(c.variant_forms.iter().map(String::as_str));
        }
        clean.extend(lex.base_markers.iter().map(String::as_str));
        clean.extend(lex.variant_markers.iter().map(String::as_str));
        clean.extend(lex.fillers.iter().map(String::as_str));
        let noisy = enc
            .vocab
            .iter()
            .filter(|(_, w, _)| !clean.contains(w))
            .count();
        assert!(noisy > 20, "expected noisy variants in vocab, got {noisy}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate(&GeneratorConfig {
            n_authors: 0,
            ..Default::default()
        })
        .is_err());
        assert!(generate(&GeneratorConfig {
            n_communities: 0,
            ..Default::default()
        })
        .is_err());
        assert!(generate(&GeneratorConfig {
            n_concepts: 1,
            ..Default::default()
        })
        .is_err());
        assert!(generate(&GeneratorConfig {
            tweet_len: (5, 3),
            ..Default::default()
        })
        .is_err());
        assert!(generate(&GeneratorConfig {
            noise_rate: 1.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn sample_weighted_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let i = sample_weighted(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn registers_split_concept_vocabulary() {
        // Two authors with different registers for the same concept should
        // draw from disjoint entity halves.
        assert_ne!(register_of(0, 0), register_of(1, 0));
        let d = small();
        let lex = &d.ground_truth.lexicon;
        let spec = &lex.concepts[0];
        let half = spec.base_forms.len() / 2;
        let first_half: std::collections::HashSet<&str> = spec.base_forms[..half]
            .iter()
            .chain(&spec.variant_forms[..half])
            .map(String::as_str)
            .collect();
        // Collect concept-0 entity words per author and check register
        // consistency for two authors with different registers.
        let (a0, a1) = (0u32, 1u32);
        for (t, &c) in d.tweets.iter().zip(&d.ground_truth.tweet_concept) {
            if c != 0 || (t.author != a0 && t.author != a1) {
                continue;
            }
            let expected_first_half = register_of(t.author as usize, 0) == 0;
            for w in t.text.split_whitespace() {
                let w = w.trim_start_matches('#').to_lowercase();
                let in_first = first_half.contains(w.as_str());
                let in_concept = spec
                    .base_forms
                    .iter()
                    .chain(&spec.variant_forms)
                    .any(|f| f == &w);
                if in_concept {
                    assert_eq!(
                        in_first, expected_first_half,
                        "author {} used wrong register word {w}",
                        t.author
                    );
                }
            }
        }
    }

    #[test]
    fn homographs_appear_under_both_concepts() {
        let d = small();
        let lex = &d.ground_truth.lexicon;
        assert!(!lex.homographs.is_empty());
        let word = &lex.homographs[0];
        let (ca, cb) = lex.homograph_concepts[0];
        let mut seen = [false, false];
        for (t, &c) in d.tweets.iter().zip(&d.ground_truth.tweet_concept) {
            if t.text.contains(word.as_str()) {
                if c == ca {
                    seen[0] = true;
                }
                if c == cb {
                    seen[1] = true;
                }
            }
        }
        assert!(seen[0] && seen[1], "homograph {word} not bimodal: {seen:?}");
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let d = small();
        let pops: Vec<u32> = d.tweets.iter().map(|t| t.popularity).collect();
        let zeros = pops.iter().filter(|&&p| p == 0).count();
        let max = *pops.iter().max().unwrap();
        // Median-ish mass at zero/low values, but a real tail exists.
        assert!(zeros > pops.len() / 4, "too few unengaged tweets: {zeros}");
        assert!(max > 10, "no viral tail, max popularity {max}");
    }

    #[test]
    fn elongate_stretches_a_vowel() {
        assert_eq!(elongate("good"), "goooood");
        assert_eq!(elongate("xyz"), "xyz");
    }
}
