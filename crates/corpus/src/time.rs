//! A minimal synthetic calendar.
//!
//! The generator works on a clean model year: **52 weeks = 364 days**,
//! starting on a Monday, split into four 13-week seasons. Real-calendar
//! irregularities (leap days, months of unequal length) would only add
//! noise to the temporal facets without exercising any additional code, so
//! the model calendar keeps the split structure exact: 7 day-of-week
//! splits, 24 hour splits, 4 season splits — precisely the facets the paper
//! uses.

use serde::{Deserialize, Serialize};

/// Minutes in a model day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;
/// Days in a model year (52 exact weeks).
pub const DAYS_PER_YEAR: u32 = 364;
/// Minutes in a model year.
pub const MINUTES_PER_YEAR: u32 = DAYS_PER_YEAR * MINUTES_PER_DAY;

/// The four seasons of the model year (13 weeks each). The generator's
/// corpus is "Australian", so the year opens in summer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Season {
    /// Weeks 0–12.
    Summer,
    /// Weeks 13–25.
    Autumn,
    /// Weeks 26–38.
    Winter,
    /// Weeks 39–51.
    Spring,
}

impl Season {
    /// All seasons in calendar order.
    pub const ALL: [Season; 4] = [
        Season::Summer,
        Season::Autumn,
        Season::Winter,
        Season::Spring,
    ];

    /// Season index 0..4.
    pub fn index(self) -> usize {
        match self {
            Season::Summer => 0,
            Season::Autumn => 1,
            Season::Winter => 2,
            Season::Spring => 3,
        }
    }

    /// Season from an index 0..4.
    pub fn from_index(i: usize) -> Season {
        Season::ALL[i % 4]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Season::Summer => "summer",
            Season::Autumn => "autumn",
            Season::Winter => "winter",
            Season::Spring => "spring",
        }
    }
}

/// A point in the model year, stored as minutes since year start
/// (midnight of the first Monday).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u32);

impl Timestamp {
    /// Construct from components. `day_of_year` wraps at 364, `hour` at 24,
    /// `minute` at 60 — convenient for additive generation.
    pub fn from_parts(day_of_year: u32, hour: u32, minute: u32) -> Timestamp {
        Timestamp(
            (day_of_year % DAYS_PER_YEAR) * MINUTES_PER_DAY + (hour % 24) * 60 + (minute % 60),
        )
    }

    /// Minutes since year start, normalized into the year.
    pub fn minute_of_year(self) -> u32 {
        self.0 % MINUTES_PER_YEAR
    }

    /// Day of year, 0..364.
    pub fn day_of_year(self) -> u32 {
        self.minute_of_year() / MINUTES_PER_DAY
    }

    /// Hour of day, 0..24.
    pub fn hour(self) -> u32 {
        (self.minute_of_year() % MINUTES_PER_DAY) / 60
    }

    /// Minute of hour, 0..60.
    pub fn minute(self) -> u32 {
        self.minute_of_year() % 60
    }

    /// Day of week, 0..7, where 0 = Monday (the model year starts Monday).
    pub fn day_of_week(self) -> u32 {
        self.day_of_year() % 7
    }

    /// Week of year, 0..52.
    pub fn week(self) -> u32 {
        self.day_of_year() / 7
    }

    /// Month of year, 0..13 (thirteen exact 4-week months).
    pub fn month(self) -> u32 {
        self.week() / 4
    }

    /// Season of year.
    pub fn season(self) -> Season {
        // week() ∈ 0..52 ⇒ season index ∈ 0..4; u32→usize is widening
        Season::from_index((self.week() / 13) as usize)
    }

    /// True on Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// English weekday name (Monday-start).
    pub fn weekday_name(self) -> &'static str {
        // day_of_week() ∈ 0..7 indexes the 7 names; u32→usize is widening
        ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][self.day_of_week() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn year_zero_is_monday_midnight_summer() {
        let t = Timestamp(0);
        assert_eq!(t.day_of_week(), 0);
        assert_eq!(t.hour(), 0);
        assert_eq!(t.season(), Season::Summer);
        assert_eq!(t.weekday_name(), "Mon");
        assert!(!t.is_weekend());
    }

    #[test]
    fn from_parts_roundtrip() {
        let t = Timestamp::from_parts(10, 14, 30);
        assert_eq!(t.day_of_year(), 10);
        assert_eq!(t.hour(), 14);
        assert_eq!(t.minute(), 30);
        assert_eq!(t.day_of_week(), 3); // day 10 = Thursday
    }

    #[test]
    fn from_parts_wraps_components() {
        let t = Timestamp::from_parts(365, 25, 61);
        assert_eq!(t.day_of_year(), 1);
        assert_eq!(t.hour(), 1);
        assert_eq!(t.minute(), 1);
    }

    #[test]
    fn weekend_detection() {
        assert!(Timestamp::from_parts(5, 12, 0).is_weekend()); // Saturday
        assert!(Timestamp::from_parts(6, 12, 0).is_weekend()); // Sunday
        assert!(!Timestamp::from_parts(4, 12, 0).is_weekend()); // Friday
    }

    #[test]
    fn seasons_partition_the_year() {
        assert_eq!(Timestamp::from_parts(0, 0, 0).season(), Season::Summer);
        assert_eq!(Timestamp::from_parts(13 * 7, 0, 0).season(), Season::Autumn);
        assert_eq!(Timestamp::from_parts(26 * 7, 0, 0).season(), Season::Winter);
        assert_eq!(Timestamp::from_parts(39 * 7, 0, 0).season(), Season::Spring);
        assert_eq!(
            Timestamp::from_parts(51 * 7 + 6, 23, 59).season(),
            Season::Spring
        );
    }

    #[test]
    fn season_index_roundtrip() {
        for s in Season::ALL {
            assert_eq!(Season::from_index(s.index()), s);
        }
    }

    #[test]
    fn months_cover_thirteen_four_week_blocks() {
        assert_eq!(Timestamp::from_parts(0, 0, 0).month(), 0);
        assert_eq!(Timestamp::from_parts(28, 0, 0).month(), 1);
        assert_eq!(Timestamp::from_parts(363, 0, 0).month(), 12);
    }

    proptest! {
        #[test]
        fn prop_component_ranges(m in 0u32..(2 * MINUTES_PER_YEAR)) {
            let t = Timestamp(m);
            prop_assert!(t.hour() < 24);
            prop_assert!(t.minute() < 60);
            prop_assert!(t.day_of_week() < 7);
            prop_assert!(t.day_of_year() < DAYS_PER_YEAR);
            prop_assert!(t.week() < 52);
            prop_assert!(t.month() < 13);
        }

        #[test]
        fn prop_minute_of_year_wraps(m in 0u32..MINUTES_PER_YEAR) {
            prop_assert_eq!(Timestamp(m).minute_of_year(), Timestamp(m + MINUTES_PER_YEAR).minute_of_year());
        }
    }
}
