//! Dataset (de)serialization.
//!
//! Two formats:
//! * a single JSON document for full datasets (including ground truth);
//! * a JSONL tweet export (one `{author, minute, text}` object per line)
//!   for interoperability with external tooling.

use crate::dataset::Dataset;
use crate::error::CorpusError;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Run `write` against a temporary file next to `path`, then rename it
/// over `path` — the destination is only ever replaced by a fully flushed
/// file, so a crash or a full disk cannot leave a truncated artifact (and
/// a pre-existing file survives any failed save). The temporary is
/// removed on failure.
fn write_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), CorpusError>,
) -> Result<(), CorpusError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| CorpusError::Parse(format!("path {} has no file name", path.display())))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let attempt = || -> Result<(), CorpusError> {
        let mut writer = BufWriter::new(File::create(&tmp)?);
        write(&mut writer)?;
        // Propagate buffered-write errors instead of letting the final
        // (error-swallowing) drop lose them.
        writer.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    let result = attempt();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Save a full dataset (tweets + ground truth) as one JSON file.
///
/// The write is atomic: the bytes land in a temporary file in the target
/// directory and are renamed over `path` only after a successful flush.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), CorpusError> {
    write_atomic(path, |writer| {
        serde_json::to_writer(writer, dataset).map_err(|e| CorpusError::Parse(e.to_string()))
    })
}

/// Load a dataset saved by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, CorpusError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut dataset: Dataset =
        serde_json::from_reader(reader).map_err(|e| CorpusError::Parse(e.to_string()))?;
    // Vocabulary-free structure; nothing to rebuild, but keep ids dense.
    for (i, a) in dataset.authors.iter_mut().enumerate() {
        // enumerate index over an in-memory dataset ≪ u32::MAX
        a.id = i as u32;
    }
    for (i, t) in dataset.tweets.iter_mut().enumerate() {
        // enumerate index over an in-memory dataset ≪ u32::MAX
        t.id = i as u32;
    }
    Ok(dataset)
}

/// Export tweets only, one JSON object per line. Atomic like
/// [`save_json`].
pub fn export_tweets_jsonl(dataset: &Dataset, path: &Path) -> Result<(), CorpusError> {
    write_atomic(path, |writer| {
        for t in &dataset.tweets {
            let line = serde_json::json!({
                "author": t.author,
                "minute": t.timestamp.0,
                "text": t.text,
            });
            writeln!(writer, "{line}")?;
        }
        Ok(())
    })
}

/// Count the lines of a JSONL export (cheap sanity check for tests/tools).
pub fn count_jsonl_lines(path: &Path) -> Result<usize, CorpusError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    Ok(reader.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "soulmate-corpus-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn json_roundtrip_preserves_dataset() {
        let d = generate(&GeneratorConfig {
            n_authors: 10,
            n_communities: 2,
            mean_tweets_per_author: 10,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("roundtrip.json");
        save_json(&d, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_authors(), d.n_authors());
        assert_eq!(loaded.n_tweets(), d.n_tweets());
        assert_eq!(loaded.tweets[3].text, d.tweets[3].text);
        assert_eq!(loaded.tweets[3].timestamp, d.tweets[3].timestamp);
        assert_eq!(
            loaded.ground_truth.author_community,
            d.ground_truth.author_community
        );
    }

    #[test]
    fn jsonl_export_has_one_line_per_tweet() {
        let d = generate(&GeneratorConfig {
            n_authors: 5,
            n_communities: 1,
            mean_tweets_per_author: 6,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("tweets.jsonl");
        export_tweets_jsonl(&d, &path).unwrap();
        let lines = count_jsonl_lines(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(lines, d.n_tweets());
    }

    #[test]
    fn failed_save_leaves_previous_file_intact() {
        let d = generate(&GeneratorConfig {
            n_authors: 4,
            n_communities: 1,
            mean_tweets_per_author: 4,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("keeps-old.json");
        std::fs::write(&path, "precious bytes").unwrap();
        // Force the temp-file creation to fail by squatting a directory
        // on the deterministic temp name.
        let mut tmp_path = path.clone();
        tmp_path.set_file_name(format!(
            ".{}.tmp-{}",
            path.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        std::fs::create_dir_all(&tmp_path).unwrap();
        assert!(save_json(&d, &path).is_err());
        assert!(export_tweets_jsonl(&d, &path).is_err());
        // The destination still holds the old bytes, untouched.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "precious bytes");
        std::fs::remove_dir_all(&tmp_path).ok();
        std::fs::remove_file(&path).ok();
        // A path with no file name is rejected cleanly, too.
        assert!(save_json(&d, Path::new("/")).is_err());
    }

    #[test]
    fn atomic_save_leaves_no_temp_on_success() {
        let d = generate(&GeneratorConfig {
            n_authors: 4,
            n_communities: 1,
            mean_tweets_per_author: 4,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("no-stray.json");
        save_json(&d, &path).unwrap();
        let parent = path.parent().unwrap();
        let strays: Vec<_> = std::fs::read_dir(parent)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("no-stray.json") && n.contains(".tmp-"))
            .collect();
        std::fs::remove_file(&path).ok();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_json(Path::new("/nonexistent/definitely/missing.json"));
        assert!(matches!(err, Err(CorpusError::Io(_))));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let err = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Err(CorpusError::Parse(_))));
    }
}
