//! Dataset (de)serialization.
//!
//! Two formats:
//! * a single JSON document for full datasets (including ground truth);
//! * a JSONL tweet export (one `{author, minute, text}` object per line)
//!   for interoperability with external tooling.

use crate::dataset::Dataset;
use crate::error::CorpusError;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save a full dataset (tweets + ground truth) as one JSON file.
pub fn save_json(dataset: &Dataset, path: &Path) -> Result<(), CorpusError> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, dataset).map_err(|e| CorpusError::Parse(e.to_string()))
}

/// Load a dataset saved by [`save_json`].
pub fn load_json(path: &Path) -> Result<Dataset, CorpusError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut dataset: Dataset =
        serde_json::from_reader(reader).map_err(|e| CorpusError::Parse(e.to_string()))?;
    // Vocabulary-free structure; nothing to rebuild, but keep ids dense.
    for (i, a) in dataset.authors.iter_mut().enumerate() {
        a.id = i as u32;
    }
    for (i, t) in dataset.tweets.iter_mut().enumerate() {
        t.id = i as u32;
    }
    Ok(dataset)
}

/// Export tweets only, one JSON object per line.
pub fn export_tweets_jsonl(dataset: &Dataset, path: &Path) -> Result<(), CorpusError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    for t in &dataset.tweets {
        let line = serde_json::json!({
            "author": t.author,
            "minute": t.timestamp.0,
            "text": t.text,
        });
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    Ok(())
}

/// Count the lines of a JSONL export (cheap sanity check for tests/tools).
pub fn count_jsonl_lines(path: &Path) -> Result<usize, CorpusError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    Ok(reader.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "soulmate-corpus-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn json_roundtrip_preserves_dataset() {
        let d = generate(&GeneratorConfig {
            n_authors: 10,
            n_communities: 2,
            mean_tweets_per_author: 10,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("roundtrip.json");
        save_json(&d, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.n_authors(), d.n_authors());
        assert_eq!(loaded.n_tweets(), d.n_tweets());
        assert_eq!(loaded.tweets[3].text, d.tweets[3].text);
        assert_eq!(loaded.tweets[3].timestamp, d.tweets[3].timestamp);
        assert_eq!(
            loaded.ground_truth.author_community,
            d.ground_truth.author_community
        );
    }

    #[test]
    fn jsonl_export_has_one_line_per_tweet() {
        let d = generate(&GeneratorConfig {
            n_authors: 5,
            n_communities: 1,
            mean_tweets_per_author: 6,
            ..GeneratorConfig::small()
        })
        .unwrap();
        let path = tmp("tweets.jsonl");
        export_tweets_jsonl(&d, &path).unwrap();
        let lines = count_jsonl_lines(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(lines, d.n_tweets());
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_json(Path::new("/nonexistent/definitely/missing.json"));
        assert!(matches!(err, Err(CorpusError::Io(_))));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let err = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Err(CorpusError::Parse(_))));
    }
}
