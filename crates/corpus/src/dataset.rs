//! Dataset containers: authors, tweets, ground truth, and the encoded
//! (vocabulary-interned) view the pipeline consumes.

use crate::lexicon::Lexicon;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use soulmate_text::{tokenize, TokenizerConfig, Vocabulary, WordId};

/// Dense author identifier (index into [`Dataset::authors`]).
pub type AuthorId = u32;
/// Dense tweet identifier (index into [`Dataset::tweets`]).
pub type TweetId = u32;

/// A short-text author (paper Definition 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Author {
    /// Dense id, equal to the author's index.
    pub id: AuthorId,
    /// Display handle ("user0042").
    pub handle: String,
}

/// A short-text message (paper Definition 2): identity, author, timestamp,
/// raw text.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    /// Dense id, equal to the tweet's index.
    pub id: TweetId,
    /// Owning author.
    pub author: AuthorId,
    /// Posting time.
    pub timestamp: Timestamp,
    /// The raw message as a user would have typed it (mentions, hashtags,
    /// noise and all).
    pub text: String,
    /// Engagement count (retweets+likes): the popularity signal the
    /// paper's future-work concept nomination weighs by. Synthetic,
    /// heavy-tailed, correlated with community size.
    #[serde(default)]
    pub popularity: u32,
}

/// Generator-side ground truth, used exclusively by the evaluation crate's
/// simulated expert panel — the pipeline under test never reads it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Number of latent concepts.
    pub n_concepts: usize,
    /// Dominant concept of each tweet (parallel to `Dataset::tweets`).
    pub tweet_concept: Vec<usize>,
    /// Per-author concept mixture (rows parallel to `Dataset::authors`,
    /// each row sums to 1).
    pub author_mixture: Vec<Vec<f32>>,
    /// Community id of each author.
    pub author_community: Vec<usize>,
    /// The structured lexicon the corpus was generated from.
    pub lexicon: Lexicon,
}

/// A complete synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// All authors; `authors[i].id == i`.
    pub authors: Vec<Author>,
    /// All tweets; `tweets[i].id == i`.
    pub tweets: Vec<Tweet>,
    /// Planted structure for evaluation.
    pub ground_truth: GroundTruth,
}

impl Dataset {
    /// Number of authors.
    pub fn n_authors(&self) -> usize {
        self.authors.len()
    }

    /// Number of tweets.
    pub fn n_tweets(&self) -> usize {
        self.tweets.len()
    }

    /// Tweet indices of one author, in dataset order.
    pub fn tweets_of(&self, author: AuthorId) -> Vec<TweetId> {
        self.tweets
            .iter()
            .filter(|t| t.author == author)
            .map(|t| t.id)
            .collect()
    }

    /// Tokenize and intern the whole corpus.
    ///
    /// Runs the real microblog tokenizer over every raw text, builds the
    /// vocabulary, prunes words occurring fewer than `min_count` times, and
    /// re-encodes the tweets. This is the representation every downstream
    /// stage (temporal grids, embeddings, clustering) consumes.
    pub fn encode(&self, tokenizer: &TokenizerConfig, min_count: u64) -> EncodedCorpus {
        let mut vocab = Vocabulary::new();
        let token_docs: Vec<Vec<String>> = self
            .tweets
            .iter()
            .map(|t| tokenize(&t.text, tokenizer))
            .collect();
        for doc in &token_docs {
            vocab.observe_all(doc.iter().map(String::as_str));
        }
        if min_count > 1 {
            vocab.prune(min_count);
        }
        let tweets = self
            .tweets
            .iter()
            .zip(&token_docs)
            .map(|(t, doc)| EncodedTweet {
                id: t.id,
                author: t.author,
                timestamp: t.timestamp,
                words: vocab.encode(doc.iter().map(String::as_str)),
                popularity: t.popularity,
            })
            .collect();
        EncodedCorpus {
            vocab,
            tweets,
            n_authors: self.authors.len(),
        }
    }
}

/// A tweet after tokenization and vocabulary interning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedTweet {
    /// Same id as the source [`Tweet`].
    pub id: TweetId,
    /// Owning author.
    pub author: AuthorId,
    /// Posting time.
    pub timestamp: Timestamp,
    /// In-vocabulary word ids, in text order (OOV words dropped).
    pub words: Vec<WordId>,
    /// Engagement count carried over from the raw tweet.
    #[serde(default)]
    pub popularity: u32,
}

/// The interned corpus view: vocabulary plus encoded tweets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodedCorpus {
    /// The corpus vocabulary (post-pruning).
    pub vocab: Vocabulary,
    /// Encoded tweets, parallel to the source dataset's tweet list.
    pub tweets: Vec<EncodedTweet>,
    /// Author count carried over from the dataset.
    pub n_authors: usize,
}

impl EncodedCorpus {
    /// Encoded tweets of one author.
    pub fn tweets_of(&self, author: AuthorId) -> Vec<&EncodedTweet> {
        self.tweets.iter().filter(|t| t.author == author).collect()
    }

    /// Word-id documents grouped per author, in author-id order — the
    /// "author contents" `O_u` of Section 4.1.2.
    pub fn author_documents(&self) -> Vec<Vec<WordId>> {
        let mut docs = vec![Vec::new(); self.n_authors];
        for t in &self.tweets {
            // u32 author id → usize is widening; ids are dense 0..n_authors by construction
            docs[t.author as usize].extend_from_slice(&t.words);
        }
        docs
    }

    /// Every encoded tweet as a word-id document (corpus order).
    pub fn documents(&self) -> Vec<&[WordId]> {
        self.tweets.iter().map(|t| t.words.as_slice()).collect()
    }

    /// Total in-vocabulary token count.
    pub fn total_tokens(&self) -> usize {
        self.tweets.iter().map(|t| t.words.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    fn tiny_dataset() -> Dataset {
        let lexicon = Lexicon::build(2, 2, 1, 1);
        let authors = vec![
            Author {
                id: 0,
                handle: "user0000".into(),
            },
            Author {
                id: 1,
                handle: "user0001".into(),
            },
        ];
        let tweets = vec![
            Tweet {
                id: 0,
                author: 0,
                timestamp: Timestamp::from_parts(0, 9, 0),
                text: "loving the beach beach today!".into(),
                popularity: 3,
            },
            Tweet {
                id: 1,
                author: 1,
                timestamp: Timestamp::from_parts(1, 20, 0),
                text: "beach run was great".into(),
                popularity: 0,
            },
            Tweet {
                id: 2,
                author: 0,
                timestamp: Timestamp::from_parts(2, 10, 0),
                text: "coffee and beach again".into(),
                popularity: 12,
            },
        ];
        Dataset {
            authors,
            tweets,
            ground_truth: GroundTruth {
                n_concepts: 2,
                tweet_concept: vec![0, 0, 1],
                author_mixture: vec![vec![0.5, 0.5], vec![1.0, 0.0]],
                author_community: vec![0, 1],
                lexicon,
            },
        }
    }

    #[test]
    fn tweets_of_filters_by_author() {
        let d = tiny_dataset();
        assert_eq!(d.tweets_of(0), vec![0, 2]);
        assert_eq!(d.tweets_of(1), vec![1]);
        assert_eq!(d.n_authors(), 2);
        assert_eq!(d.n_tweets(), 3);
    }

    #[test]
    fn encode_builds_vocab_and_word_ids() {
        let d = tiny_dataset();
        let enc = d.encode(&TokenizerConfig::default(), 1);
        assert_eq!(enc.tweets.len(), 3);
        let beach = enc.vocab.id("beach").expect("beach in vocab");
        // Tweet 0 contains "beach" twice.
        assert_eq!(
            enc.tweets[0].words.iter().filter(|&&w| w == beach).count(),
            2
        );
        // Stopwords are gone.
        assert!(enc.vocab.id("the").is_none());
    }

    #[test]
    fn encode_min_count_prunes_rare_words() {
        let d = tiny_dataset();
        let enc = d.encode(&TokenizerConfig::default(), 3);
        // "beach" appears 4 times, survives; "coffee" once, pruned.
        assert!(enc.vocab.id("beach").is_some());
        assert!(enc.vocab.id("coffee").is_none());
        // Encoded tweets only contain surviving ids.
        for t in &enc.tweets {
            for &w in &t.words {
                assert!(enc.vocab.word(w).is_some());
            }
        }
    }

    #[test]
    fn author_documents_concatenate_tweets() {
        let d = tiny_dataset();
        let enc = d.encode(&TokenizerConfig::default(), 1);
        let docs = enc.author_documents();
        assert_eq!(docs.len(), 2);
        let len0: usize = enc.tweets_of(0).iter().map(|t| t.words.len()).sum();
        assert_eq!(docs[0].len(), len0);
    }

    #[test]
    fn total_tokens_counts_all() {
        let d = tiny_dataset();
        let enc = d.encode(&TokenizerConfig::default(), 1);
        assert_eq!(
            enc.total_tokens(),
            enc.tweets.iter().map(|t| t.words.len()).sum::<usize>()
        );
        assert!(enc.total_tokens() > 0);
    }
}
