//! Synthetic microblog corpus generator for the SoulMate reproduction.
//!
//! The paper evaluates on 1M geo-tagged Australian tweets from ~4K users —
//! a proprietary crawl we cannot redistribute. This crate substitutes a
//! *generative* corpus with **planted structure** that exercises the same
//! code paths and, crucially, carries ground truth:
//!
//! * **Latent concepts** with dedicated vocabularies (→ concept clustering
//!   has something to find);
//! * **Author communities** mixing 2–3 concepts (→ author linking has a
//!   correct answer);
//! * **Temporal modulation** — concepts carry weekday/weekend day profiles
//!   and diurnal hour windows, plus seasonal affinity (→ temporal slabs and
//!   the TCBOW embedding have real signal, reproducing the paper's Fig. 1
//!   motivation);
//! * **Relational word forms** (base/variant under contextual "mode"
//!   markers and concept head words) from which an analogy question suite
//!   is derived (→ substitutes the Google analogy test of Fig. 8);
//! * **Microblog noise** — misspellings, abbreviations, mentions, hashtags,
//!   elongations (→ exact textual matching degrades just like on Twitter).
//!
//! The output [`Dataset`] is plain `(author, timestamp, text)` records; the
//! ground truth lives beside it and is consumed **only** by the evaluation
//! crate's simulated experts, never by the pipeline under test.

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]
// Index-based loops are used deliberately where two mirrored cells of a
// symmetric matrix (or several parallel arrays) are written per step —
// iterator rewrites obscure those invariants.
#![allow(clippy::needless_range_loop)]

pub mod analogy;
pub mod dataset;
pub mod error;
pub mod generator;
pub mod io;
pub mod lexicon;
pub mod stats;
pub mod time;

pub use analogy::{build_analogy_suite, AnalogyQuestion};
pub use dataset::{
    Author, AuthorId, Dataset, EncodedCorpus, EncodedTweet, GroundTruth, Tweet, TweetId,
};
pub use error::CorpusError;
pub use generator::{generate, GeneratorConfig};
pub use lexicon::{ConceptSpec, Lexicon};
pub use time::{Season, Timestamp, MINUTES_PER_DAY, MINUTES_PER_YEAR};
