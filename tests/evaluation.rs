//! Workspace integration tests: the evaluation protocols against a fitted
//! pipeline, checking the paper's headline *shapes* at miniature scale.

use soulmate::core::author_similarity;
use soulmate::eval::{subgraph_precision, weighted_precision, SubgraphProtocol};
use soulmate::prelude::*;

fn fitted() -> (Dataset, Pipeline) {
    let d = generate(&GeneratorConfig {
        n_authors: 32,
        n_communities: 4,
        mean_tweets_per_author: 40,
        ..GeneratorConfig::small()
    })
    .expect("valid config");
    let p = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit");
    (d, p)
}

#[test]
fn concept_method_scores_on_the_low_textual_column() {
    // The paper's key qualitative claim (Table 5): where textual methods
    // collapse, SoulMate_Concept still finds conceptually related pairs.
    let (d, p) = fitted();
    let cfg = PanelConfig::default();
    let panel = ExpertPanel::new(&d, &p.corpus, &cfg);
    let protocol = SubgraphProtocol::default();
    let ctx = p.baseline_context();

    let run = |method| {
        let sim = author_similarity(&ctx, method).unwrap();
        let forest = p.subgraphs_for(&sim).unwrap();
        subgraph_precision(&panel, &p.corpus, &forest, &protocol).unwrap()
    };
    let concept = run(Method::SoulMateConcept);
    let exact = run(Method::ExactMatching);
    // The concept method must find at least as much low-textual/conceptual
    // signal as raw exact matching.
    assert!(
        concept.textual_low >= exact.textual_low,
        "concept {} < exact {} on the textual_v column",
        concept.textual_low,
        exact.textual_low
    );
}

#[test]
fn joint_alpha_sweep_has_interior_or_boundary_shape() {
    let (d, p) = fitted();
    let cfg = PanelConfig::default();
    let panel = ExpertPanel::new(&d, &p.corpus, &cfg);
    let mut scores = Vec::new();
    for step in 0..=10 {
        let alpha = step as f32 / 10.0;
        let fused = soulmate::core::fuse_similarities(&p.x_concept, &p.x_content, alpha).unwrap();
        let counts = weighted_precision(&panel, &p.corpus, &fused, 20, 5, 20).unwrap();
        scores.push(counts.p_textual());
    }
    // All precisions are valid and the sweep is non-degenerate.
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    let spread = scores.iter().cloned().fold(f32::MIN, f32::max)
        - scores.iter().cloned().fold(f32::MAX, f32::min);
    assert!(spread >= 0.0);
}

#[test]
fn expert_panel_agrees_with_itself_across_calls() {
    let (d, p) = fitted();
    let cfg = PanelConfig::default();
    let panel1 = ExpertPanel::new(&d, &p.corpus, &cfg);
    let panel2 = ExpertPanel::new(&d, &p.corpus, &cfg);
    for (i, j) in [(0usize, 9usize), (5, 44), (100, 7)] {
        assert_eq!(panel1.score_pair(i, j), panel2.score_pair(i, j));
    }
}

#[test]
fn weighted_precision_ranks_truth_above_noise() {
    // A similarity matrix built directly from ground-truth communities
    // must out-score a constant matrix under the panel.
    let (d, p) = fitted();
    let cfg = PanelConfig::default();
    let panel = ExpertPanel::new(&d, &p.corpus, &cfg);
    let n = d.n_authors();
    let communities = &d.ground_truth.author_community;
    let oracle: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if communities[i] == communities[j] {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    // Break ties deterministically with a small index-based epsilon so
    // "top pairs" under the oracle are genuinely same-community pairs.
    let oracle: Vec<Vec<f32>> = oracle
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, &v)| v + ((i * 31 + j * 17) % 100) as f32 * 1e-5)
                .collect()
        })
        .collect();
    let good = weighted_precision(&panel, &p.corpus, &oracle, 20, 5, 20)
        .unwrap()
        .p_conceptual();
    let flat: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| ((i * 13 + j * 7) % 100) as f32 / 100.0)
                .collect()
        })
        .collect();
    let noise = weighted_precision(&panel, &p.corpus, &flat, 20, 5, 20)
        .unwrap()
        .p_conceptual();
    assert!(
        good > noise,
        "oracle similarity {good} should beat arbitrary {noise}"
    );
}
