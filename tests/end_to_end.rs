//! Workspace integration tests: the full SoulMate pipeline across crates.

use soulmate::core::author_similarity;
use soulmate::prelude::*;

fn dataset() -> Dataset {
    generate(&GeneratorConfig {
        n_authors: 24,
        n_communities: 4,
        mean_tweets_per_author: 30,
        ..GeneratorConfig::small()
    })
    .expect("valid config")
}

#[test]
fn full_pipeline_end_to_end() {
    let d = dataset();
    let p = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit");

    // Offline artifacts are shape-consistent.
    assert_eq!(p.n_authors(), d.n_authors());
    assert_eq!(p.tweet_vectors.rows(), p.corpus.tweets.len());
    assert!(p.concepts.n_concepts() > 0);

    // Graph cut covers every author.
    let forest = p.subgraphs().expect("cut");
    let covered: usize = forest.components().iter().map(Vec::len).sum();
    assert_eq!(covered, d.n_authors());

    // Online phase works from the same fitted state.
    let query: Vec<(Timestamp, String)> = d
        .tweets
        .iter()
        .filter(|t| t.author == 1)
        .take(6)
        .map(|t| (t.timestamp, t.text.clone()))
        .collect();
    let outcome = p.link_query_author(&query).expect("query");
    assert!(outcome.subgraph.contains(&outcome.query_index));
}

#[test]
fn pipeline_is_deterministic_across_fits() {
    let d = dataset();
    let a = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit a");
    let b = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit b");
    assert_eq!(a.x_total, b.x_total);
    assert_eq!(
        a.collective.matrix().as_slice(),
        b.collective.matrix().as_slice()
    );
}

#[test]
fn all_baselines_produce_valid_similarity_matrices() {
    let d = dataset();
    let p = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit");
    let ctx = p.baseline_context();
    let n = p.n_authors();
    for method in [
        Method::SoulMateConcept,
        Method::SoulMateContent,
        Method::SoulMateJoint { alpha: 0.6 },
        Method::TemporalCollective { zeta: 5 },
        Method::CbowEnriched { zeta: 5 },
        Method::DocumentVector,
        Method::ExactMatching,
    ] {
        let sim = author_similarity(&ctx, method).expect("method computes");
        assert_eq!(sim.len(), n, "{} wrong size", method.name());
        for (i, row) in sim.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (j, &s) in row.iter().enumerate() {
                assert!(s.is_finite(), "{}[{i}][{j}] not finite", method.name());
                assert!(
                    (sim[j][i] - s).abs() < 1e-5,
                    "{} not symmetric at ({i},{j})",
                    method.name()
                );
            }
        }
        // Each baseline's matrix must feed the graph cut without error.
        let forest = p.subgraphs_for(&sim).expect("cut");
        assert_eq!(forest.components().iter().map(Vec::len).sum::<usize>(), n);
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // mirrored (i,j)/(j,i) access
fn joint_similarity_interpolates_between_standardized_parts() {
    use soulmate::core::similarity::standardize_offdiagonal;
    let d = dataset();
    let p = Pipeline::fit(&d, PipelineConfig::fast()).expect("fit");
    let ctx = p.baseline_context();
    let concept = author_similarity(&ctx, Method::SoulMateConcept).unwrap();
    let content = author_similarity(&ctx, Method::SoulMateContent).unwrap();
    let joint = author_similarity(&ctx, Method::SoulMateJoint { alpha: 0.6 }).unwrap();
    // The fusion standardizes both views (common scale) before Eq 17.
    let zc = standardize_offdiagonal(&concept, p.concept_stats.0, p.concept_stats.1);
    let zt = standardize_offdiagonal(&content, p.content_stats.0, p.content_stats.1);
    for i in 0..p.n_authors() {
        for j in 0..p.n_authors() {
            if i == j {
                continue;
            }
            let expect = 0.6 * zc[i][j] + 0.4 * zt[i][j];
            assert!(
                (joint[i][j] - expect).abs() < 1e-4,
                "({i},{j}): {} vs {expect}",
                joint[i][j]
            );
        }
    }
    // The pipeline's own fused matrix uses the same recipe.
    for i in 0..p.n_authors() {
        for j in 0..p.n_authors() {
            assert!((p.x_total[i][j] - joint[i][j]).abs() < 1e-4);
        }
    }
}
