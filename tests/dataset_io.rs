//! Workspace integration tests: dataset persistence feeding the pipeline.

use soulmate::corpus::io::{export_tweets_jsonl, load_json, save_json};
use soulmate::prelude::*;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("soulmate-ws-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn persisted_dataset_refits_identically() {
    let d = generate(&GeneratorConfig {
        n_authors: 16,
        n_communities: 4,
        mean_tweets_per_author: 20,
        ..GeneratorConfig::small()
    })
    .unwrap();
    let path = tmp("refit.json");
    save_json(&d, &path).unwrap();
    let loaded = load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = Pipeline::fit(&d, PipelineConfig::fast()).unwrap();
    let b = Pipeline::fit(&loaded, PipelineConfig::fast()).unwrap();
    assert_eq!(
        a.x_total, b.x_total,
        "reloaded dataset must fit identically"
    );
}

#[test]
fn jsonl_export_matches_tweet_count() {
    let d = generate(&GeneratorConfig {
        n_authors: 8,
        n_communities: 2,
        mean_tweets_per_author: 10,
        ..GeneratorConfig::small()
    })
    .unwrap();
    let path = tmp("export.jsonl");
    export_tweets_jsonl(&d, &path).unwrap();
    let lines = std::fs::read_to_string(&path).unwrap().lines().count();
    std::fs::remove_file(&path).ok();
    assert_eq!(lines, d.n_tweets());
}

#[test]
fn tokenizer_and_vocab_are_stable_across_encode_calls() {
    let d = generate(&GeneratorConfig::small()).unwrap();
    let a = d.encode(&TokenizerConfig::default(), 3);
    let b = d.encode(&TokenizerConfig::default(), 3);
    assert_eq!(a.vocab.len(), b.vocab.len());
    assert_eq!(a.tweets[7].words, b.tweets[7].words);
}
