//! Online phase / cold start: fit the pipeline on all-but-one author,
//! then link the held-out author's first tweets as a *query author* —
//! the paper's Section 4.2 scenario (a new user posts a handful of tweets
//! and we must place them among existing authors immediately, without
//! retraining).
//!
//! ```text
//! cargo run --release --example cold_start_query
//! ```

use soulmate::prelude::*;

fn main() {
    let full = generate(&GeneratorConfig {
        n_authors: 50,
        n_communities: 5,
        mean_tweets_per_author: 50,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");

    // Hold out the last author entirely.
    let held_out: u32 = (full.n_authors() - 1) as u32;
    let mut train = full.clone();
    train.tweets.retain(|t| t.author != held_out);
    // held_out = n_authors−1 round-trips u32↔usize exactly (counts ≪ u32::MAX)
    train.authors.truncate(held_out as usize);
    train
        .ground_truth
        .author_mixture
        .truncate(held_out as usize); // u32→usize widening
    train
        .ground_truth
        .author_community
        .truncate(held_out as usize); // u32→usize widening
                                      // Re-densify tweet ids and the parallel concept labels.
    let kept: Vec<usize> = full
        .tweets
        .iter()
        .enumerate()
        .filter(|(_, t)| t.author != held_out)
        .map(|(i, _)| i)
        .collect();
    train.ground_truth.tweet_concept = kept
        .iter()
        .map(|&i| full.ground_truth.tweet_concept[i])
        .collect();
    for (new_id, t) in train.tweets.iter_mut().enumerate() {
        // dense re-numbering; tweet counts ≪ u32::MAX
        t.id = new_id as u32;
    }

    println!(
        "Training on {} authors / {} tweets; holding out {}.",
        train.n_authors(),
        train.n_tweets(),
        full.authors[held_out as usize].handle // u32→usize widening
    );
    let pipeline = Pipeline::fit(&train, PipelineConfig::fast()).expect("pipeline fits");

    // The held-out author returns with only their first 5 tweets.
    let query_tweets: Vec<(Timestamp, String)> = full
        .tweets
        .iter()
        .filter(|t| t.author == held_out)
        .take(5)
        .map(|t| (t.timestamp, t.text.clone()))
        .collect();
    println!("Query author posts {} tweets, e.g.:", query_tweets.len());
    for (_, text) in query_tweets.iter().take(2) {
        println!("  \"{text}\"");
    }

    let outcome = pipeline
        .link_query_author(&query_tweets)
        .expect("query links");
    println!(
        "\nQuery author joined a subgraph of {} nodes (avg edge weight {:.3}).",
        outcome.subgraph.len(),
        outcome.subgraph_avg_weight
    );

    // Did SoulMate place them with their true community?
    let true_community = full.ground_truth.author_community[held_out as usize];
    let mates: Vec<&str> = outcome
        .subgraph
        .iter()
        .filter(|&&a| a != outcome.query_index)
        .map(|&a| train.authors[a].handle.as_str())
        .collect();
    println!("Linked with: {}", mates.join(", "));
    let same_community = outcome
        .subgraph
        .iter()
        .filter(|&&a| a != outcome.query_index)
        .filter(|&&a| train.ground_truth.author_community[a] == true_community)
        .count();
    let others = outcome.subgraph.len() - 1;
    if others > 0 {
        println!(
            "{} of {} linked authors share the query's true community (#{true_community}).",
            same_community, others
        );
    }

    // A rebuild trigger, as the paper describes, schedules periodic
    // offline refreshes as new tweets stream in.
    let mut trigger = Trigger::new(1000);
    trigger.notify(query_tweets.len());
    println!(
        "\nRebuild trigger: {} tweets pending of 1000 before the next offline refresh.",
        trigger.pending()
    );
}
