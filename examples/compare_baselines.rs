//! Baseline comparison: run all seven author-similarity methods of
//! Section 5.1.1 through the identical SW-MST graph cut and score each
//! with the simulated expert panel — a miniature of the paper's Table 5.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use soulmate::core::author_similarity;
use soulmate::eval::{subgraph_precision, SubgraphProtocol, TextTable};
use soulmate::prelude::*;

fn main() {
    let dataset = generate(&GeneratorConfig {
        n_authors: 48,
        n_communities: 6,
        mean_tweets_per_author: 40,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");
    let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).expect("pipeline fits");
    let panel_cfg = PanelConfig::default();
    let panel = ExpertPanel::new(&dataset, &pipeline.corpus, &panel_cfg);
    let protocol = SubgraphProtocol::default();

    let methods = [
        Method::SoulMateConcept,
        Method::SoulMateContent,
        Method::SoulMateJoint { alpha: 0.6 },
        Method::TemporalCollective { zeta: 10 },
        Method::CbowEnriched { zeta: 10 },
        Method::DocumentVector,
        Method::ExactMatching,
    ];

    let ctx = pipeline.baseline_context();
    let mut table = TextTable::new(["method", "score-2 (txt^ con^)", "score-3 (txt_v con^)"]);
    for method in methods {
        let sim = author_similarity(&ctx, method).expect("method computes");
        let forest = pipeline.subgraphs_for(&sim).expect("cut runs");
        match subgraph_precision(&panel, &pipeline.corpus, &forest, &protocol) {
            Ok(p) => table.row([
                method.name().to_string(),
                format!("{:.2}", p.textual_high),
                format!("{:.2}", p.textual_low),
            ]),
            Err(e) => table.row([method.name().to_string(), "-".into(), e.to_string()]),
        };
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper Table 5): SoulMate_Joint leads both columns;\n\
         only the concept-aware methods score on the low-textual column."
    );
}
