//! Train-once / serve-many: fit the offline phase, persist the model as a
//! snapshot, and answer online queries from the reloaded file — the
//! deployment shape the paper's offline/online split implies.
//!
//! ```text
//! cargo run --release -p soulmate --example persist_and_serve
//! ```

use soulmate::core::PipelineSnapshot;
use soulmate::prelude::*;

fn main() {
    let dataset = generate(&GeneratorConfig {
        n_authors: 40,
        n_communities: 4,
        mean_tweets_per_author: 40,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");

    // Offline phase: fit and snapshot.
    let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).expect("pipeline fits");
    let handles: Vec<String> = dataset.authors.iter().map(|a| a.handle.clone()).collect();
    let snapshot = pipeline.snapshot(&handles);

    let mut path = std::env::temp_dir();
    path.push(format!("soulmate-demo-model-{}.json", std::process::id()));
    snapshot.save(&path).expect("snapshot saves");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "Persisted model to {} ({:.1} KiB: vocab {}, {} concepts, {} authors).",
        path.display(),
        bytes as f64 / 1024.0,
        snapshot.vocab.len(),
        snapshot.centroids.len(),
        snapshot.n_authors()
    );

    // A fresh process would start here: load and serve.
    let served = PipelineSnapshot::load(&path).expect("snapshot loads");
    let query: Vec<(Timestamp, String)> = dataset
        .tweets
        .iter()
        .filter(|t| t.author == 7)
        .take(6)
        .map(|t| (t.timestamp, t.text.clone()))
        .collect();

    let started = std::time::Instant::now();
    let outcome = served.link_query_author(&query).expect("query links");
    println!(
        "Served a cold-start query in {:.1} ms (no retraining).",
        started.elapsed().as_secs_f64() * 1000.0
    );
    let mates: Vec<&str> = outcome
        .subgraph
        .iter()
        .filter(|&&a| a != outcome.query_index)
        .map(|&a| served.author_handles[a].as_str())
        .collect();
    println!(
        "Query author linked with {} authors: {}",
        mates.len(),
        mates.join(", ")
    );

    // The snapshot answers identically to the in-memory pipeline.
    let direct = pipeline.link_query_author(&query).expect("direct query");
    assert_eq!(direct.subgraph, outcome.subgraph);
    println!("Snapshot-served answer matches the in-memory pipeline exactly.");

    std::fs::remove_file(&path).ok();
}
