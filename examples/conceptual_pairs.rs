//! Recreate the paper's Table 1: pairs of tweets from *different authors*
//! whose raw contents are (almost) disjoint, yet whose tweet vectors sit
//! close together — the "conceptual relevance" that motivates the whole
//! concept pipeline.
//!
//! ```text
//! cargo run --release -p soulmate --example conceptual_pairs
//! ```

use soulmate::prelude::*;
use soulmate::text::jaccard;

fn main() {
    let dataset = generate(&GeneratorConfig {
        n_authors: 40,
        n_communities: 4,
        mean_tweets_per_author: 40,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");
    let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).expect("pipeline fits");
    let corpus = &pipeline.corpus;

    // Scan cross-author tweet pairs: near-zero token overlap, but high
    // tweet-vector cosine (the collective embedding bridges the wording).
    let mut found: Vec<(usize, usize, f32, f32)> = Vec::new();
    let n = corpus.tweets.len().min(1200);
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&corpus.tweets[i], &corpus.tweets[j]);
            if a.author == b.author || a.words.len() < 4 || b.words.len() < 4 {
                continue;
            }
            let overlap = jaccard(&a.words, &b.words);
            if overlap > 0.001 {
                continue; // we want (near-)disjoint surface forms
            }
            let sim = soulmate::linalg::cosine(
                pipeline.tweet_vectors.row(i),
                pipeline.tweet_vectors.row(j),
            );
            if sim > 0.9 {
                found.push((i, j, overlap, sim));
            }
        }
        if found.len() >= 400 {
            break;
        }
    }
    found.sort_by(|a, b| b.3.total_cmp(&a.3));

    println!(
        "Table 1 recreated — conceptually close, textually disjoint tweet pairs\n\
         (token Jaccard = 0, tweet-vector cosine > 0.9):\n"
    );
    let truth = &dataset.ground_truth.tweet_concept;
    let mut shown = 0;
    let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (i, j, _, sim) in found {
        // Prefer genuinely same-concept pairs, each tweet shown once.
        if truth[i] != truth[j] || used.contains(&i) || used.contains(&j) {
            continue;
        }
        used.insert(i);
        used.insert(j);
        let (a, b) = (&dataset.tweets[i], &dataset.tweets[j]);
        println!("concept #{:<2} (vector cosine {sim:.3})", truth[i]);
        println!(
            "  {} : \"{}\"",
            // u32 author id → usize widening
            dataset.authors[a.author as usize].handle,
            a.text
        );
        println!(
            "  {} : \"{}\"",
            // u32 author id → usize widening
            dataset.authors[b.author as usize].handle,
            b.text
        );
        println!();
        shown += 1;
        if shown == 4 {
            break;
        }
    }
    if shown == 0 {
        println!("(no qualifying pair in this sample — rerun with more authors)");
    } else {
        println!(
            "No shared token, yet the embedding places the tweets together:\n\
             exactly the phenomenon the paper's Table 1 illustrates with\n\
             \"overconsumption\" (tea vs cabbages) and friends."
        );
    }
}
