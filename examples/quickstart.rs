//! Quickstart: generate a synthetic microblog corpus, fit the full
//! SoulMate pipeline, and print the extracted author subgraphs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use soulmate::prelude::*;

fn main() {
    // 1. A small synthetic Twitter-like corpus with planted communities.
    let dataset = generate(&GeneratorConfig {
        n_authors: 60,
        n_communities: 6,
        mean_tweets_per_author: 50,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");
    println!(
        "Generated {} tweets by {} authors.",
        dataset.n_tweets(),
        dataset.n_authors()
    );

    // 2. The full offline phase: temporal slabs → TCBOW → collective
    //    vectors → tweet vectors → concepts → author vectors → X^Total.
    let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).expect("pipeline fits");
    println!(
        "Vocabulary: {} words; concepts discovered: {}; temporal slabs: {}.",
        pipeline.corpus.vocab.len(),
        pipeline.concepts.n_concepts(),
        pipeline.temporal.slab_index().total_slabs(),
    );

    // 3. Cut the authors' weighted graph into linked-author subgraphs.
    let forest = pipeline.subgraphs().expect("graph cut runs");
    let mut components = forest.components();
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    println!("\nTop linked-author subgraphs (maximum spanning trees):");
    for (i, group) in components.iter().take(5).enumerate() {
        let handles: Vec<&str> = group
            .iter()
            .map(|&a| dataset.authors[a].handle.as_str())
            .collect();
        println!(
            "  #{i}: {} authors (avg edge weight {:.3}): {}",
            group.len(),
            forest.component_avg_weight(group),
            handles.join(", ")
        );
    }

    // 4. Sanity: how well do subgraphs match the planted communities?
    let communities = &dataset.ground_truth.author_community;
    let (mut same, mut total) = (0usize, 0usize);
    for group in &components {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                total += 1;
                if communities[a] == communities[b] {
                    same += 1;
                }
            }
        }
    }
    if total > 0 {
        println!(
            "\nWithin-subgraph community purity: {:.1}% ({} communities planted)",
            100.0 * same as f32 / total as f32,
            6
        );
    }
}
