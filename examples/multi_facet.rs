//! Multi-aspect temporal embedding with a *three-level* facet hierarchy
//! (season ▸ day-of-week ▸ hour) — the paper claims "our embedding model
//! can employ an infinite number of temporal facets"; this example runs
//! the depth recursion (Eqs 8/11) across three levels and compares it to
//! the default two-level day ▸ hour setup.
//!
//! ```text
//! cargo run --release -p soulmate --example multi_facet
//! ```

use soulmate::core::TcbowConfig;
use soulmate::embedding::CbowConfig;
use soulmate::prelude::*;

fn main() {
    let dataset = generate(&GeneratorConfig {
        n_authors: 40,
        n_communities: 4,
        mean_tweets_per_author: 50,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");

    for (label, facets, thresholds) in [
        (
            "two-level (day > hour)",
            vec![Facet::DayOfWeek, Facet::Hour],
            vec![0.4, 0.3],
        ),
        (
            "three-level (season > day > hour)",
            vec![Facet::Season, Facet::DayOfWeek, Facet::Hour],
            vec![0.5, 0.4, 0.3],
        ),
    ] {
        let config = PipelineConfig {
            tcbow: TcbowConfig {
                cbow: CbowConfig {
                    dim: 24,
                    epochs: 3,
                    ..Default::default()
                },
                hierarchy: HierarchyConfig { facets, thresholds },
                seed: 42,
                threads: 4,
            },
            ..PipelineConfig::fast()
        };
        let started = std::time::Instant::now();
        let pipeline = Pipeline::fit(&dataset, config).expect("pipeline fits");
        let slabs: Vec<usize> = (0..pipeline.temporal.n_levels())
            .map(|l| pipeline.temporal.level_models(l).len())
            .collect();
        let forest = pipeline.subgraphs().expect("cut runs");

        // Community purity of the extracted subgraphs.
        let communities = &dataset.ground_truth.author_community;
        let (mut same, mut total) = (0usize, 0usize);
        for group in forest.components() {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    total += 1;
                    same += usize::from(communities[a] == communities[b]);
                }
            }
        }
        let purity = if total > 0 {
            100.0 * same as f32 / total as f32
        } else {
            0.0
        };
        println!(
            "{label}: {} slab models per level {slabs:?}, fitted in {:.1}s, \
             {} subgraphs, within-subgraph community purity {purity:.1}%",
            slabs.iter().sum::<usize>(),
            started.elapsed().as_secs_f32(),
            forest.components().len(),
        );
    }
    println!(
        "\nThe hierarchy depth is configuration, not code: any facet order\n\
         works, and the depth attribute (Eq 8/11) recurses to the leaves."
    );
}
