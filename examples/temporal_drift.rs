//! Temporal analysis: inspect the planted temporal structure the way the
//! paper's Section 4.1.1 does — split similarity grids, slab dendrograms,
//! hierarchical hour-under-day slabs, and word-pair co-occurrence drift
//! (Fig 1).
//!
//! ```text
//! cargo run --release --example temporal_drift
//! ```

use soulmate::corpus::stats::{pair_cooccurrence_by_hour, pair_cooccurrence_by_season};
use soulmate::prelude::*;
use soulmate::temporal::{render_dendrogram, similarity_grid, slabs_from_grid};

fn main() {
    let dataset = generate(&GeneratorConfig {
        n_authors: 60,
        mean_tweets_per_author: 60,
        ..GeneratorConfig::small()
    })
    .expect("valid generator config");
    let corpus = dataset.encode(&TokenizerConfig::default(), 3);

    // --- Day dimension: grid, dendrogram, slabs (the Table 3 pipeline) ---
    let grid = similarity_grid(&corpus, Facet::DayOfWeek, |_| true);
    println!("Day-of-week similarity grid (modified TF-IDF + cosine):\n");
    println!("{}", grid.render());
    let (slabs, dendro) = slabs_from_grid(&grid, 0.59).expect("day grid has 7 splits");
    println!(
        "Dendrogram:\n{}",
        render_dendrogram(&dendro, Facet::DayOfWeek)
    );
    println!("Day slabs @ threshold 0.59: {}\n", slabs.render());

    // --- Hierarchical: hour slabs conditioned on day slabs (Table 4) ---
    let idx = SlabIndex::build(
        &corpus,
        &HierarchyConfig {
            facets: vec![Facet::DayOfWeek, Facet::Hour],
            thresholds: vec![0.59, 0.3],
        },
    )
    .expect("hierarchy builds");
    for parent in 0..idx.level(0).len() {
        let hours: Vec<String> = idx
            .children(0, parent)
            .iter()
            .map(|s| format!("{:?}", s.splits))
            .collect();
        println!("Hour slabs under day slab {parent}: {}", hours.join(" "));
    }

    // --- Fig 1: co-occurrence drift of planted word pairs ---
    let lex = &dataset.ground_truth.lexicon;
    let head0 = corpus
        .vocab
        .id(&lex.concepts[0].head)
        .expect("head in vocab");
    let ent0 = corpus
        .vocab
        .id(&lex.concepts[0].base_forms[0])
        .expect("entity");
    let by_hour = pair_cooccurrence_by_hour(&corpus, head0, ent0);
    let peak_hour = by_hour
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(h, _)| h)
        .unwrap_or(0);
    println!(
        "\nConcept-0 signature pair peaks at hour {peak_hour:02} \
         (concept 0 is planted as a morning concept)."
    );
    let by_season = pair_cooccurrence_by_season(&corpus, head0, ent0);
    println!(
        "Season distribution of the same pair: summer {:.2}, autumn {:.2}, \
         winter {:.2}, spring {:.2} (planted as a summer concept).",
        by_season[0], by_season[1], by_season[2], by_season[3]
    );
}
