//! # SoulMate
//!
//! A from-scratch Rust reproduction of *"SoulMate: Short-Text Author
//! Linking Through Multi-Aspect Temporal-Textual Embedding"* (ICDE 2024).
//!
//! SoulMate links authors of short noisy texts (tweets) by
//!
//! 1. clustering temporal *splits* (hours, weekdays, seasons) into *slabs*
//!    per facet, with child facets conditioned on their parents
//!    ([`temporal`]);
//! 2. training one CBOW embedding per slab and fusing them — weighted by
//!    per-slab analogy accuracy — into *collective* word vectors
//!    ([`core::tcbow`]);
//! 3. composing word → tweet → author *content* vectors, and clustering
//!    tweet vectors into latent *concepts* to derive author *concept*
//!    vectors ([`core`]);
//! 4. fusing both similarity views with a mixing weight α and cutting the
//!    authors' weighted graph into tight subgraphs with a stack-wise
//!    maximum-spanning-tree ([`graph`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use soulmate::corpus::{generate, GeneratorConfig};
//! use soulmate::core::{Pipeline, PipelineConfig};
//!
//! let dataset = generate(&GeneratorConfig::small()).unwrap();
//! let pipeline = Pipeline::fit(&dataset, PipelineConfig::fast()).unwrap();
//! let forest = pipeline.subgraphs().unwrap();
//! for group in forest.components() {
//!     println!("linked authors: {group:?}");
//! }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries reproducing every table and figure of the paper.

// 100% safe Rust; soulmate-lint's `no-unsafe` rule double-checks this
// guarantee at the token level.
#![forbid(unsafe_code)]

pub use soulmate_cluster as cluster;
pub use soulmate_core as core;
pub use soulmate_corpus as corpus;
pub use soulmate_embedding as embedding;
pub use soulmate_eval as eval;
pub use soulmate_graph as graph;
pub use soulmate_linalg as linalg;
pub use soulmate_retrieval as retrieval;
pub use soulmate_temporal as temporal;
pub use soulmate_text as text;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use soulmate_core::{
        AuthorCombiner, Combiner, ConceptConfig, ConceptModel, Method, Pipeline, PipelineConfig,
        PipelineSnapshot, QueryEngine, TcbowConfig, TemporalEmbedding, Trigger,
    };
    pub use soulmate_corpus::{generate, Dataset, GeneratorConfig, Timestamp};
    pub use soulmate_embedding::{CbowConfig, Embedding};
    pub use soulmate_eval::{ExpertPanel, PanelConfig};
    pub use soulmate_graph::{swmst, SpanningForest, WeightedGraph};
    pub use soulmate_retrieval::{IvfConfig, IvfIndex};
    pub use soulmate_temporal::{Facet, HierarchyConfig, SlabIndex};
    pub use soulmate_text::{tokenize, TokenizerConfig, Vocabulary};
}
